"""The Webhouse: the paper's Section 1 scenario as a usable front-end.

A :class:`Webhouse` accumulates incomplete knowledge about one source
document by recording ps-query/answer pairs (Algorithm Refine), answers
new queries locally whenever possible (Corollary 3.15 / Theorem 3.14),
and otherwise plans non-redundant local queries against the source
(Theorem 3.19), merging their answers into its knowledge.

>>> wh = Webhouse(alphabet, tree_type=catalog_type)
>>> wh.ask(source, query1)          # acquire knowledge
>>> wh.can_answer(query3)           # True: answer locally, no source hit
>>> answer, plan = wh.complete_and_answer(source, query4)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..answering.answerable import fully_answerable
from ..answering.facts import certainly_nonempty, possibly_nonempty
from ..answering.query_incomplete import query_incomplete
from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..incomplete.certainty import certain_prefix, possible_prefix
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.monitor import (
    Alert,
    GrowthMonitor,
    REMEDY_CONJUNCTIVE,
    REMEDY_LINEAR,
    REMEDY_LOSSY,
)
from ..obs.registry import Metrics
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from ..refine.conjunctive import ConjunctiveIncompleteTree, refine_plus_sequence
from ..refine.heuristics import forget_specializations
from ..refine.inverse import universal_incomplete
from ..refine.minimize import merge_equivalent_symbols
from ..refine.refine import refine
from ..refine.type_intersect import intersect_with_tree_type
from ..store import codec as _codec
from .completion import completion_plan
from .local_query import LocalQuery, overlay
from .source import InMemorySource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.session import Session, SessionStore


class Webhouse:
    """Incomplete-information warehouse for one XML source."""

    def __init__(
        self,
        alphabet: Iterable[str],
        tree_type: Optional[TreeType] = None,
        auto_minimize: bool = False,
        monitor: Optional[GrowthMonitor] = None,
    ):
        if tree_type is not None:
            alphabet = set(alphabet) | set(tree_type.alphabet)
        self._alphabet = sorted(set(alphabet))
        self._tree_type = tree_type
        self._auto_minimize = auto_minimize
        self._state = universal_incomplete(self._alphabet)
        #: When a conjunctive remedy is active, knowledge lives here as
        #: Refine⁺ layers (Corollary 3.9) and ``_state`` is ignored.
        self._conjunctive: Optional[ConjunctiveIncompleteTree] = None
        self._knowledge_cache: Optional[IncompleteTree] = None
        self._history: List[Tuple[PSQuery, DataTree]] = []
        self._all_linear = True
        self._session: Optional["Session"] = None
        #: Per-instance books (always on, cheap): counts of the operations
        #: this warehouse performed, independent of the global obs switch.
        self.metrics = Metrics()
        #: Growth watchdog fed on every record (docs/OBSERVABILITY.md).
        #: The default instance classifies but never alerts; configure
        #: budgets and callbacks via :meth:`guard` or pass your own.
        self.monitor = monitor if monitor is not None else GrowthMonitor()

    @property
    def history(self) -> Tuple[Tuple[PSQuery, DataTree], ...]:
        """The recorded query/answer pairs, as an immutable tuple.

        Exposed read-only so the in-memory history and an attached
        session journal cannot silently diverge; mutate only through
        :meth:`record` / :meth:`ask` / :meth:`reset`.
        """
        return tuple(self._history)

    # -- persistence -------------------------------------------------------------

    @property
    def session(self) -> Optional["Session"]:
        """The attached durable session, if any."""
        return self._session

    def attach(self, session: "Session") -> None:
        """Journal every future knowledge mutation to ``session``.

        A fresh session first receives the warehouse's current history
        (so disk and memory agree from the start); attaching a session
        that already holds knowledge is only allowed when this warehouse
        is empty — it then loads the persisted state, exactly like
        :meth:`resume`.
        """
        if self._session is not None:
            raise ValueError("a session is already attached; detach() first")
        if not session.is_empty():
            if self._history:
                raise ValueError(
                    "cannot attach a non-empty session to a warehouse with "
                    "history; use Webhouse.resume()"
                )
            recovered = session.recover()
            self._state = recovered.state
            self._history = list(recovered.history)
            self._all_linear = all(q.is_linear() for q, _ in self._history)
            self._knowledge_cache = None
        else:
            for query, answer in self._history:
                session.append_event(
                    {
                        "type": "record",
                        "origin": "attach",
                        "query": _codec.query_to_json(query),
                        "answer": _codec.tree_to_json(answer),
                    }
                )
        self._session = session

    def detach(self) -> Optional["Session"]:
        """Stop journaling and close the session; returns it (now closed)."""
        session, self._session = self._session, None
        if session is not None:
            session.close()
        return session

    @classmethod
    def resume(cls, store: "SessionStore", name: str) -> "Webhouse":
        """Reopen a journaled session: snapshot + replay, then attach.

        The resumed warehouse answers ``can_answer`` / ``certain_prefix``
        exactly as the original would have (Theorem 3.5 equivalence of
        replaying the history).
        """
        session = store.open(name)
        try:
            webhouse = cls(
                session.alphabet(),
                tree_type=session.tree_type(),
                auto_minimize=session.auto_minimize(),
            )
            recovered = session.recover()
            webhouse._state = recovered.state
            webhouse._history = list(recovered.history)
            webhouse._all_linear = all(
                q.is_linear() for q, _ in webhouse._history
            )
            webhouse._knowledge_cache = None
            webhouse._session = session
            webhouse.metrics.inc("webhouse.resumes")
            if _OBS.enabled:
                _OBS.metrics.inc("webhouse.resumes")
                _OBS.metrics.observe("webhouse.resume_replayed", recovered.replayed)
            return webhouse
        except Exception:
            session.close()
            raise

    def source_hint(self) -> Dict[str, object]:
        """Workload parameters remembered by the attached session's meta.

        Sessions created by the CLI / ops server store the synthetic
        source's parameters (``{"name": "catalog", "products": N,
        "seed": N}``) under ``extra.workload`` so any later process —
        another CLI invocation, or the HTTP ops plane hosting the
        session — can regenerate the exact document the journaled
        knowledge was acquired from.  Empty when detached or when the
        session carries no workload hint.
        """
        if self._session is None:
            return {}
        extra = self._session.meta.get("extra") or {}
        return dict(extra.get("workload") or {})

    def checkpoint(self) -> Optional[str]:
        """Force a snapshot of the attached session now (None if detached).

        Returns the snapshot path; the covered journal prefix is
        compacted away.
        """
        if self._session is None:
            return None
        return self._session.snapshot(self._state, list(self._history))

    def _journal(self, event: Dict[str, object]) -> None:
        if self._session is not None:
            self._session.append_event(event)
            self._session.maybe_snapshot(self._state, self._history)

    # -- acquisition -------------------------------------------------------------

    def record(
        self, query: PSQuery, answer: DataTree, _origin: str = "record"
    ) -> None:
        """Refine knowledge with one query/answer pair (Theorem 3.4).

        In conjunctive mode (after ``apply_remedy("conjunctive")``) the
        pair is appended as a Refine⁺ layer instead (Theorem 3.8) —
        O((|A|+|q|)·|Σ|) added size rather than a product intersection.

        The growth monitor sees the new knowledge size afterwards; it
        may fire alerts, invoke the degrade callback, or raise
        :class:`~repro.obs.monitor.BudgetExceeded` (knowledge and
        journal are consistent either way).
        """
        with _span("webhouse.record") as sp:
            if self._conjunctive is not None:
                self._conjunctive = self._conjunctive.refine_plus(
                    query, answer, self._alphabet
                )
            else:
                self._state = refine(self._state, query, answer, self._alphabet)
                if self._auto_minimize:
                    self._state = merge_equivalent_symbols(self._state)
            self._knowledge_cache = None
            self._history.append((query, answer))
            self._all_linear = self._all_linear and query.is_linear()
            self.metrics.inc("webhouse.records")
            self._journal(
                {
                    "type": "record",
                    "origin": _origin,
                    "query": _codec.query_to_json(query),
                    "answer": _codec.tree_to_json(answer),
                }
            )
            size = self._representation_size()
            if _OBS.enabled:
                _OBS.metrics.inc("webhouse.records")
                _OBS.metrics.observe("webhouse.knowledge_size", size)
                if sp is not None:
                    sp.attrs.update(
                        step=len(self._history),
                        answer_nodes=len(answer),
                        knowledge_size=size,
                        engine=self.engine,
                    )
            self.monitor.observe(size, linear=self._all_linear)

    def record_many(
        self,
        pairs: Iterable[Tuple[PSQuery, DataTree]],
        _origin: str = "record_many",
    ) -> None:
        """Batched :meth:`record`: fold many pairs, then bookkeep once.

        rep-equivalent to recording the pairs one by one (intersection
        is commutative and idempotent), but cheaper on three counts:
        duplicate pairs refine only once, compatible answers are merged
        smallest-first so the intermediate products stay small, and the
        growth monitor / auto-minimizer run once per batch instead of
        once per pair.  History and the session journal still receive
        every input pair, in input order, so resume/replay semantics are
        unchanged.
        """
        pairs = list(pairs)
        if not pairs:
            return
        with _span("webhouse.record_many", pairs=len(pairs)) as sp:
            if self._conjunctive is not None:
                for query, answer in pairs:
                    self._conjunctive = self._conjunctive.refine_plus(
                        query, answer, self._alphabet
                    )
            else:
                unique: List[Tuple[PSQuery, DataTree]] = []
                seen = set()
                for pair in pairs:
                    if pair not in seen:
                        seen.add(pair)
                        unique.append(pair)
                # merge small answers first: keeps intermediate products small
                unique.sort(key=lambda qa: (qa[0].size(), len(qa[1])))
                for query, answer in unique:
                    self._state = refine(self._state, query, answer, self._alphabet)
                if self._auto_minimize:
                    self._state = merge_equivalent_symbols(self._state)
            self._knowledge_cache = None
            for query, answer in pairs:
                self._history.append((query, answer))
                self._all_linear = self._all_linear and query.is_linear()
                self.metrics.inc("webhouse.records")
                self._journal(
                    {
                        "type": "record",
                        "origin": _origin,
                        "query": _codec.query_to_json(query),
                        "answer": _codec.tree_to_json(answer),
                    }
                )
            self.metrics.inc("webhouse.batches")
            size = self._representation_size()
            if _OBS.enabled:
                _OBS.metrics.inc("webhouse.batches")
                _OBS.metrics.inc("webhouse.records", len(pairs))
                _OBS.metrics.observe("webhouse.batch_pairs", len(pairs))
                _OBS.metrics.observe("webhouse.knowledge_size", size)
                if sp is not None:
                    sp.attrs.update(
                        step=len(self._history),
                        knowledge_size=size,
                        engine=self.engine,
                    )
            self.monitor.observe(size, linear=self._all_linear)

    def ask(self, source: InMemorySource, query: PSQuery) -> DataTree:
        """Query the source and fold the answer into knowledge."""
        with _span("webhouse.ask"):
            answer = source.ask(query)
            self.metrics.inc("webhouse.asks")
            if _OBS.enabled:
                _OBS.metrics.inc("webhouse.asks")
            self.record(query, answer, _origin="ask")
            return answer

    def reset(self) -> None:
        """Re-initialize to the bare type — the paper's answer to source
        updates when no change information is available."""
        self._state = universal_incomplete(self._alphabet)
        self._conjunctive = None
        self._knowledge_cache = None
        self._history.clear()
        self._all_linear = True
        self.monitor.reset_window()
        self._journal({"type": "reset"})

    # -- growth control ----------------------------------------------------------

    @property
    def engine(self) -> str:
        """``"plain"`` (Algorithm Refine) or ``"conjunctive"`` (Refine⁺)."""
        return "conjunctive" if self._conjunctive is not None else "plain"

    def guard(
        self,
        warn_budget: Optional[float] = None,
        hard_budget: Optional[float] = None,
        on_hard: str = "degrade",
        window: int = 8,
        degrade_on_superlinear: bool = False,
    ) -> GrowthMonitor:
        """Install a :class:`GrowthMonitor` wired to :meth:`apply_remedy`.

        The degrade callback applies each alert's recommended remedy to
        this warehouse, closing the paper's monitor-and-degrade loop:
        superlinear growth or a hard-budget breach triggers the matching
        Example 3.2 remedy automatically.  Returns the monitor (register
        extra callbacks with :meth:`GrowthMonitor.on_alert`).
        """
        monitor = GrowthMonitor(
            window=window,
            warn_budget=warn_budget,
            hard_budget=hard_budget,
            on_hard=on_hard,
            degrade_callback=self._degrade,
            degrade_on_superlinear=degrade_on_superlinear,
        )
        monitor.seed(self.monitor.sizes, all_linear=self._all_linear)
        self.monitor = monitor
        return monitor

    def _degrade(self, alert: Alert) -> None:
        self.apply_remedy(alert.remedy)

    def apply_remedy(self, remedy: str) -> None:
        """Apply one of the paper's three blowup remedies in place.

        * ``"conjunctive"`` — re-fold the history with Refine⁺
          (Corollary 3.9): representation becomes linear in the history;
          querying the materialized knowledge gets more expensive.
        * ``"linear"`` — turn on per-step minimization (Lemma 3.12) and
          minimize the current state now.
        * ``"lossy"`` — forget specializations (Section 3.2 heuristics);
          in conjunctive mode each layer is coarsened independently
          (still a superset of the represented trees, so still sound).

        Remedies are an in-memory performance posture and are **not**
        journaled (except lossy forgetting, which changes the
        represented set and journals as ``compact``): a session resumed
        from disk starts back in plain mode.
        """
        with _span("webhouse.apply_remedy", remedy=remedy):
            if remedy == REMEDY_CONJUNCTIVE:
                if self._conjunctive is None:
                    self._conjunctive = refine_plus_sequence(
                        self._alphabet, self._history, tree_type=self._tree_type
                    )
                    self._knowledge_cache = None
            elif remedy == REMEDY_LINEAR:
                self._auto_minimize = True
                if self._conjunctive is None:
                    self._state = merge_equivalent_symbols(self._state)
                    self._knowledge_cache = None
            elif remedy == REMEDY_LOSSY:
                self.compact()
            else:
                raise ValueError(f"unknown remedy {remedy!r}")
            self.metrics.inc(f"webhouse.remedy.{remedy}")
            if _OBS.enabled:
                _OBS.metrics.inc(f"webhouse.remedy.{remedy}")
            self.monitor.reset_window()

    def _representation_size(self) -> int:
        """Size of the *maintained* representation (not the materialized
        knowledge): conjunctive layers when degraded, else the plain
        state.  This is the quantity the growth remedies bound."""
        if self._conjunctive is not None:
            return self._conjunctive.size()
        return self._state.size()

    # -- knowledge ------------------------------------------------------------------

    @property
    def knowledge(self) -> IncompleteTree:
        """The incomplete tree (history ∩ source type, Theorem 3.5).

        In conjunctive mode this materializes the layer product — the
        operation Theorem 3.10 prices: worst-case exponential, which is
        precisely the cost the conjunctive representation defers from
        every ``record`` to the queries that need full knowledge.
        """
        if self._knowledge_cache is None:
            if self._conjunctive is not None:
                self._knowledge_cache = self._conjunctive.to_incomplete_tree()
            elif self._tree_type is not None:
                self._knowledge_cache = intersect_with_tree_type(
                    self._state, self._tree_type
                )
            else:
                self._knowledge_cache = self._state.normalized()
        return self._knowledge_cache

    def prepare(self) -> "Webhouse":
        """Materialize the knowledge cache now; returns self.

        Read paths (``answer_with_caveats``, prefix checks) normally
        materialize :attr:`knowledge` lazily on first use.  Under a
        readers-writer discipline (the cluster's per-shard locks) that
        lazy fill would happen under a *read* lock; it is idempotent —
        racing readers compute equal values and the losing assignment
        changes nothing observable — but wasteful.  Calling ``prepare``
        while the write lock is still held moves the materialization
        cost onto the mutation that invalidated the cache, so
        subsequent readers are pure.
        """
        self.knowledge  # noqa: B018 - property access fills the cache
        return self

    def data_tree(self) -> DataTree:
        """Everything known for sure — the data tree Td."""
        return self.knowledge.data_tree()

    def size(self) -> int:
        """Maintained representation size (conjunctive-aware)."""
        if self._conjunctive is not None:
            return self._conjunctive.size()
        return self.knowledge.size()

    def stats(self) -> Dict[str, object]:
        """Operation counts and current knowledge shape, as plain data.

        Built on the per-instance metrics registry (``self.metrics``) so
        the counts are exact whether or not global observability is on.
        In conjunctive mode the shape is reported from the layers
        (materializing the product just for stats would defeat the
        remedy).
        """
        if self._conjunctive is not None:
            shape: Dict[str, object] = {
                "knowledge_size": self._conjunctive.size(),
                "specializations": sum(
                    len(layer.type.symbols()) for layer in self._conjunctive.layers
                ),
                "data_nodes": len(self._conjunctive.data_nodes()),
            }
        else:
            knowledge = self.knowledge
            shape = {
                "knowledge_size": knowledge.size(),
                "specializations": len(knowledge.type.symbols()),
                "data_nodes": len(knowledge.data_node_ids()),
            }
        return {
            "queries_recorded": len(self._history),
            "asks": int(self.metrics.value("webhouse.asks")),
            "source_completions": int(self.metrics.value("webhouse.completions")),
            **shape,
            "engine": self.engine,
            "growth_regime": self.monitor.classification(),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        rendered = ", ".join(f"{key}={value}" for key, value in stats.items())
        return f"Webhouse({rendered})"

    def compact(self, labels: Optional[Iterable[str]] = None) -> None:
        """Apply the lossy forgetting heuristic (Section 3.2) in place.

        In conjunctive mode every layer is coarsened independently — each
        layer's rep set only grows, so the intersection still contains
        every tree the exact knowledge did (sound, lossy).
        """
        labels = None if labels is None else sorted(set(labels))
        if self._conjunctive is not None:
            self._conjunctive = ConjunctiveIncompleteTree(
                [
                    forget_specializations(layer, labels)
                    for layer in self._conjunctive.layers
                ],
                self._conjunctive.tree_type,
            )
        else:
            self._state = forget_specializations(self._state, labels)
        self._knowledge_cache = None
        self._journal({"type": "compact", "labels": labels})

    # -- local answering -----------------------------------------------------------

    def can_answer(self, query: PSQuery) -> bool:
        """Corollary 3.15: is the query fully answerable locally?"""
        answerable, _answer = fully_answerable(self.knowledge, query)
        return answerable

    def answer_locally(self, query: PSQuery) -> DataTree:
        """The exact answer, from local data only.

        Raises ``ValueError`` when the knowledge does not determine it.
        """
        answerable, answer = fully_answerable(self.knowledge, query)
        if not answerable:
            raise ValueError(
                "query is not fully answerable from local knowledge; "
                "use possible_answers() or complete_and_answer()"
            )
        return answer

    def possible_answers(self, query: PSQuery) -> IncompleteTree:
        """Theorem 3.14: an incomplete tree describing all possible
        answers given current knowledge."""
        return query_incomplete(self.knowledge, query)

    def certain_answer_part(self, query: PSQuery) -> DataTree:
        """The sure part of the answer: q evaluated on the data tree.

        For reachable knowledge this is a prefix of every possible
        answer."""
        return query.evaluate(self.data_tree())

    def answer_with_caveats(self, query: PSQuery) -> Tuple[DataTree, bool]:
        """Example 3.4's reply shape: the complete sure part, plus a flag
        telling whether the true answer may contain more.

        Returns ``(sure_answer, may_have_more)``: when the flag is
        False, ``sure_answer`` is the exact answer (the query was fully
        answerable, Corollary 3.15); when True, the source holds — or
        may hold — matches the local knowledge cannot see.
        """
        answerable, sure = fully_answerable(self.knowledge, query)
        return sure, not answerable

    def is_certain_prefix(self, prefix: DataTree) -> bool:
        return certain_prefix(prefix, self.knowledge)

    def is_possible_prefix(self, prefix: DataTree) -> bool:
        return possible_prefix(prefix, self.knowledge)

    def may_match(self, query: PSQuery) -> bool:
        """Corollary 3.18: possibly non-empty answer."""
        return possibly_nonempty(self.knowledge, query)

    def must_match(self, query: PSQuery) -> bool:
        """Corollary 3.18: certainly non-empty answer."""
        return certainly_nonempty(self.knowledge, query)

    # -- mediated answering ------------------------------------------------------------

    def completion_plan(self, query: PSQuery) -> List[LocalQuery]:
        """Theorem 3.19: non-redundant local queries completing the
        knowledge relative to the query."""
        return completion_plan(self.knowledge, query)

    def complete_and_answer(
        self, source: InMemorySource, query: PSQuery
    ) -> Tuple[DataTree, List[LocalQuery]]:
        """Answer the query by fetching only the missing information.

        Returns the exact answer and the executed plan.  Local answers
        are folded into knowledge for future queries.
        """
        with _span("webhouse.complete_and_answer") as sp:
            plan = self.completion_plan(query)
            self.metrics.inc("webhouse.completions")
            self._journal(
                {
                    "type": "complete",
                    "query": _codec.query_to_json(query),
                    "plan_queries": len(plan),
                }
            )
            if _OBS.enabled:
                _OBS.metrics.inc("webhouse.completions")
                _OBS.metrics.observe("webhouse.plan_queries", len(plan))
                if sp is not None:
                    sp.attrs["plan_queries"] = len(plan)
            merged = self.data_tree()
            for local in plan:
                if local.node == "":
                    # nothing known yet: the plan degenerates to the query
                    # itself at the document root (which also records it)
                    answer = self.ask(source, local.query)
                    return answer, plan
                answer = source.ask_local(local.query, local.node)
                if not answer.is_empty():
                    merged = overlay(merged, answer)
            result = query.evaluate(merged)
            return result, plan


__all__ = ["Webhouse"]
