"""Mediator layer: local queries, non-redundant completions
(Theorem 3.19), simulated sources and the Webhouse front-end."""

from .completion import completion_plan
from .local_query import LocalQuery, overlay
from .source import InMemorySource, SourceStats
from .webhouse import Webhouse

__all__ = [
    "InMemorySource",
    "LocalQuery",
    "SourceStats",
    "Webhouse",
    "completion_plan",
    "overlay",
]
