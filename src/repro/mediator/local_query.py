"""Local queries ``p @ n`` (Section 3.4).

A local ps-query is addressed at a known data node: it returns the
answer of ``p`` on the subtree of the full input rooted at ``n``.  The
mediator uses them to fetch only the missing information.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.query import PSQuery
from ..core.tree import DataTree, NodeId, _Record


@dataclass(frozen=True)
class LocalQuery:
    """``query @ node``."""

    query: PSQuery
    node: NodeId

    def size(self) -> int:
        return self.query.size()

    def __repr__(self) -> str:
        return f"{self.query.root.label}-pattern({self.query.size()})@{self.node}"


def overlay(base: DataTree, addition: DataTree) -> DataTree:
    """Merge a local answer into the known prefix.

    ``addition``'s root must be a node of ``base`` (the local query's
    anchor); shared nodes must agree on label/value/parent.
    """
    if addition.is_empty():
        return base
    anchor = addition.root
    if anchor not in base:
        raise ValueError(f"anchor {anchor!r} of local answer not in base tree")
    merged_nodes = {}
    for node_id in base.node_ids():
        merged_nodes[node_id] = [
            base.label(node_id),
            base.value(node_id),
            base.parent(node_id),
            list(base.children(node_id)),
        ]
    for node_id in addition.node_ids():
        parent = addition.parent(node_id)
        if node_id in merged_nodes:
            record = merged_nodes[node_id]
            if record[0] != addition.label(node_id) or record[1] != addition.value(node_id):
                raise ValueError(f"conflicting data for node {node_id!r}")
            if parent is not None and record[2] != parent:
                raise ValueError(f"conflicting parent for node {node_id!r}")
        else:
            merged_nodes[node_id] = [
                addition.label(node_id),
                addition.value(node_id),
                parent,
                list(addition.children(node_id)),
            ]
            siblings = merged_nodes[parent][3]
            if node_id not in siblings:
                siblings.append(node_id)
    # rebuild with child lists derived from the parent pointers
    children_map = {nid: [] for nid in merged_nodes}
    for nid, (_label, _value, parent, _children) in merged_nodes.items():
        if parent is not None:
            children_map[parent].append(nid)
    records = {
        nid: _Record(label, value, parent, tuple(children_map[nid]))
        for nid, (label, value, parent, _children) in merged_nodes.items()
    }
    return DataTree(base.root, records)
