"""Simulated XML sources.

The paper's Webhouse accumulates knowledge by querying remote XML
documents.  We substitute an in-memory :class:`InMemorySource` wrapping
a :class:`~repro.core.tree.DataTree`: it answers ps-queries against the
full document or against the subtree rooted at a given node (the local
queries of Section 3.4), and keeps transfer statistics so experiments
can measure how much retrieval the mediator machinery saves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.query import PSQuery
from ..core.tree import DataTree, NodeId
from ..core.treetype import TreeType


@dataclass
class SourceStats:
    """Counters for one source."""

    queries: int = 0
    nodes_served: int = 0

    def record(self, answer: DataTree) -> None:
        self.queries += 1
        self.nodes_served += len(answer)


def merge_sources(
    documents: "dict[str, DataTree]",
    virtual_root_label: str = "sources",
    virtual_root_id: NodeId = "virtual-root",
) -> DataTree:
    """Virtually merge several documents into one (Section 3.1).

    The paper reduces the multi-source case to the single-document case
    by merging the sources under a virtual root; each document hangs
    under the new root and keeps its node ids (which must be disjoint
    across sources).  Queries against the merged document start with the
    virtual root label.
    """
    from ..core.tree import NodeSpec, node as make_node

    seen: set = {virtual_root_id}
    children = []
    for name in sorted(documents):
        doc = documents[name]
        if doc.is_empty():
            continue
        for node_id in doc.node_ids():
            if node_id in seen:
                raise ValueError(
                    f"node id {node_id!r} appears in several sources; "
                    "ids must be disjoint to merge"
                )
            seen.add(node_id)

        def build(node_id) -> NodeSpec:
            return make_node(
                node_id,
                doc.label(node_id),
                doc.value(node_id),
                [build(c) for c in doc.children(node_id)],
            )

        children.append(build(doc.root))
    return DataTree.build(
        make_node(virtual_root_id, virtual_root_label, 0, children)
    )


class InMemorySource:
    """A static XML document reachable through ps-queries only."""

    def __init__(self, tree: DataTree, tree_type: Optional[TreeType] = None):
        if tree_type is not None:
            violation = tree_type.violation(tree)
            if violation is not None:
                raise ValueError(f"document violates its type: {violation}")
        self._tree = tree
        self._type = tree_type
        self.stats = SourceStats()

    @property
    def tree_type(self) -> Optional[TreeType]:
        return self._type

    def document(self) -> DataTree:
        """Direct access for test oracles; real clients must query."""
        return self._tree

    def ask(self, query: PSQuery) -> DataTree:
        """Answer a ps-query against the whole document."""
        answer = query.evaluate(self._tree)
        self.stats.record(answer)
        return answer

    def ask_local(self, query: PSQuery, node_id: NodeId) -> DataTree:
        """Answer ``query @ node_id``: evaluate on the subtree at the node."""
        if node_id not in self._tree:
            raise KeyError(f"unknown node {node_id!r}")
        answer = query.evaluate(self._tree.subtree(node_id))
        self.stats.record(answer)
        return answer

    def __repr__(self) -> str:
        return f"InMemorySource({len(self._tree)} nodes, {self.stats.queries} queries)"
