"""XML serialization of incomplete trees.

The paper's introduction emphasizes that incomplete trees "exhibit in a
user-friendly way the partial information available as well as the
missing information, and can be itself naturally represented and
browsed as an XML document".  This module provides that document form,
with an exact round trip::

    <incomplete-tree allows-empty="false">
      <data> ... the data nodes with λ/ν ... </data>
      <type roots="s1 s2">
        <symbol name="s" target="product" kind="label">
          <cond> ... exact value-set ... </cond>
          <alternative>
            <child symbol="t" mult="*"/>
          </alternative>
        </symbol>
      </type>
    </incomplete-tree>

Conditions serialize by their *denotation* (Lemma 2.3's interval/string
normal form), so the round trip preserves semantics exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List
from xml.etree import ElementTree as ET

from ..core.conditions import Cond, ValueSet
from ..core.intervals import Interval, IntervalSet
from ..core.multiplicity import Atom, Disjunction, parse_mult
from ..core.stringsets import StringSet
from ..core.values import Value, value_repr
from .conditional import ConditionalTreeType
from .incomplete_tree import DataNode, IncompleteTree


def cond_to_element(cond: Cond) -> ET.Element:
    """Serialize a condition's exact denotation."""
    element = ET.Element("cond")
    values = cond.values
    for interval in values.numbers.intervals:
        attrs: Dict[str, str] = {}
        if interval.low is not None:
            attrs["low"] = str(interval.low)
            attrs["low-closed"] = "1" if interval.low_closed else "0"
        if interval.high is not None:
            attrs["high"] = str(interval.high)
            attrs["high-closed"] = "1" if interval.high_closed else "0"
        ET.SubElement(element, "interval", attrs)
    strings = ET.SubElement(
        element,
        "strings",
        {"cofinite": "1" if values.strings.is_cofinite else "0"},
    )
    for member in sorted(values.strings.members):
        ET.SubElement(strings, "s", {"v": member})
    return element


def cond_from_element(element: ET.Element) -> Cond:
    """Inverse of :func:`cond_to_element`."""
    intervals = []
    strings = StringSet.empty()
    for child in element:
        if child.tag == "interval":
            low = child.attrib.get("low")
            high = child.attrib.get("high")
            intervals.append(
                Interval(
                    Fraction(low) if low is not None else None,
                    Fraction(high) if high is not None else None,
                    child.attrib.get("low-closed") == "1",
                    child.attrib.get("high-closed") == "1",
                )
            )
        elif child.tag == "strings":
            members = [s.attrib["v"] for s in child]
            strings = StringSet(members, cofinite=child.attrib.get("cofinite") == "1")
    return Cond.of(ValueSet(IntervalSet(intervals), strings))


def incomplete_to_xml(incomplete: IncompleteTree) -> str:
    """Serialize an incomplete tree to its XML document form."""
    root = ET.Element(
        "incomplete-tree",
        {"allows-empty": "1" if incomplete.allows_empty else "0"},
    )
    data = ET.SubElement(root, "data")
    node_ids = incomplete.data_node_ids()
    for node_id in sorted(node_ids):
        value = incomplete.data_value(node_id)
        ET.SubElement(
            data,
            "node",
            {
                "id": node_id,
                "label": incomplete.data_label(node_id),
                "value": value_repr(value),
                **({"kind": "str"} if isinstance(value, str) else {}),
            },
        )
    tau = incomplete.type
    type_el = ET.SubElement(
        root, "type", {"roots": " ".join(sorted(tau.roots))}
    )
    for symbol in sorted(tau.symbols()):
        target = tau.sigma(symbol)
        symbol_el = ET.SubElement(
            type_el,
            "symbol",
            {
                "name": symbol,
                "target": target,
                "kind": "node" if target in node_ids else "label",
            },
        )
        cond = tau.cond(symbol)
        if not cond.is_true():
            symbol_el.append(cond_to_element(cond))
        for atom in tau.mu(symbol):
            alternative = ET.SubElement(symbol_el, "alternative")
            for entry, mult in atom.items():
                ET.SubElement(
                    alternative, "child", {"symbol": entry, "mult": mult.value}
                )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def incomplete_from_xml(text: str) -> IncompleteTree:
    """Inverse of :func:`incomplete_to_xml` (semantics-exact)."""
    root = ET.fromstring(text)
    if root.tag != "incomplete-tree":
        raise ValueError(f"expected <incomplete-tree>, got <{root.tag}>")
    allows_empty = root.attrib.get("allows-empty") == "1"

    nodes: Dict[str, DataNode] = {}
    data = root.find("data")
    if data is not None:
        for node_el in data:
            raw = node_el.attrib["value"]
            value: Value = (
                raw if node_el.attrib.get("kind") == "str" else Fraction(raw)
            )
            nodes[node_el.attrib["id"]] = DataNode(node_el.attrib["label"], value)

    type_el = root.find("type")
    if type_el is None:
        raise ValueError("missing <type> element")
    roots = type_el.attrib.get("roots", "").split()
    mu: Dict[str, Disjunction] = {}
    cond: Dict[str, Cond] = {}
    sigma: Dict[str, str] = {}
    for symbol_el in type_el:
        name = symbol_el.attrib["name"]
        sigma[name] = symbol_el.attrib["target"]
        atoms: List[Atom] = []
        for child in symbol_el:
            if child.tag == "cond":
                cond[name] = cond_from_element(child)
            elif child.tag == "alternative":
                atoms.append(
                    Atom(
                        [
                            (entry.attrib["symbol"], parse_mult(entry.attrib["mult"]))
                            for entry in child
                        ]
                    )
                )
        mu[name] = Disjunction(atoms)
    tau = ConditionalTreeType(roots, mu, cond, sigma)
    return IncompleteTree(nodes, tau, allows_empty=allows_empty)
