"""Certain and possible prefixes of an incomplete tree (Theorem 2.8).

Given an incomplete tree T and a data tree T, the paper shows both
questions below are decidable in PTIME:

* *possible prefix*: some tree in rep(T) has T as a prefix relative to
  the data nodes N;
* *certain prefix*: rep(T) is non-empty and every tree in rep(T) has T
  as a prefix relative to N.

Both are computed by a bottom-up recursion over T.  ``Poss(n)`` /
``Cert(n)`` collect the type symbols at which the subtree of T rooted at
n possibly / certainly embeds; the child-level combinatorics is a
bounded assignment (possible case) or an injective matching into
guaranteed entries (certain case).

One liberalization over the paper's presentation: a fresh (non-anchored)
node of T may also embed onto a *data* node of the represented trees
when label and value agree — the prefix definition only forces identity
on N.  The brute-force oracle tests confirm this is the exact semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..core.matching import feasible_assignment, has_perfect_matching
from ..core.tree import DataTree, NodeId
from ..core.values import values_equal
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from .incomplete_tree import IncompleteTree


def possible_prefix(prefix: DataTree, incomplete: IncompleteTree) -> bool:
    """Is ``prefix`` a possible prefix of ``incomplete`` (relative to N)?"""
    if prefix.is_empty():
        return not incomplete.is_empty()
    if incomplete.type.is_empty():
        return False
    tau = incomplete.type.normalized()
    analysis = _Analysis(prefix, incomplete, tau)
    if not analysis.anchors_consistent():
        return False
    poss = analysis.possible_sets()
    return bool(poss[prefix.root] & tau.roots)


def incomplete_equivalent(a: IncompleteTree, b: IncompleteTree) -> bool:
    """Mutual certain-prefix containment — a semantic equivalence check.

    Two incomplete trees produced from the same acquisition history by
    different maintenance strategies (snapshot + suffix replay vs. pure
    replay, Theorem 3.5) may differ syntactically while representing the
    same certain knowledge.  This helper checks the testable core of
    that agreement: both are empty, or each one's data tree ``Td`` is a
    certain prefix of the other (Theorem 2.8) and the empty tree is
    allowed by both or by neither.  It is the semantic counterpart of an
    ``__eq__`` — kept as a free function because full ``rep``-equality
    is harder than the paper's PTIME toolkit provides.
    """
    if a.is_empty() or b.is_empty():
        return a.is_empty() == b.is_empty()
    if a.allows_empty != b.allows_empty:
        return False
    if a.allows_empty:
        # certain_prefix is vacuously False against nonempty prefixes
        # here; with no guaranteed nodes both data trees must be empty.
        return a.data_tree().is_empty() and b.data_tree().is_empty()
    return certain_prefix(a.data_tree(), b) and certain_prefix(b.data_tree(), a)


def certain_prefix(prefix: DataTree, incomplete: IncompleteTree) -> bool:
    """Is ``prefix`` a certain prefix of ``incomplete`` (relative to N)?

    Requires rep(T) non-empty, per the paper's definition.
    """
    if incomplete.is_empty():
        return False
    if prefix.is_empty():
        return True
    if incomplete.allows_empty:
        return False  # the empty tree is represented and contains nothing
    if incomplete.type.is_empty():
        return False
    tau = incomplete.type.normalized()
    analysis = _Analysis(prefix, incomplete, tau)
    if not analysis.anchors_consistent():
        return False
    cert = analysis.certain_sets()
    return tau.roots <= cert[prefix.root]


class _Analysis:
    """Shared machinery for the two recursions."""

    def __init__(self, prefix: DataTree, incomplete: IncompleteTree, tau):
        self._prefix = prefix
        self._incomplete = incomplete
        self._tau = tau
        self._node_ids = incomplete.data_node_ids()
        self._by_label: Dict[str, List[str]] = {}
        self._by_node: Dict[NodeId, List[str]] = {}
        for symbol in tau.symbols():
            target = tau.sigma(symbol)
            if target in self._node_ids:
                self._by_node.setdefault(target, []).append(symbol)
            else:
                self._by_label.setdefault(target, []).append(symbol)

    def anchors_consistent(self) -> bool:
        """Anchored nodes of the prefix must agree with λ and ν."""
        for node_id in self._prefix.node_ids():
            if node_id in self._node_ids:
                if self._prefix.label(node_id) != self._incomplete.data_label(node_id):
                    return False
                if not values_equal(
                    self._prefix.value(node_id), self._incomplete.data_value(node_id)
                ):
                    return False
        return True

    def _candidates(self, node_id: NodeId, forced: bool) -> List[str]:
        """Symbols whose σ-target can host this prefix node.

        ``forced`` (certain case) additionally requires the symbol's
        condition to pin the data value down to the node's value.
        """
        tree = self._prefix
        label, value = tree.label(node_id), tree.value(node_id)
        result: List[str] = []
        if node_id in self._node_ids:
            # anchored: only the node's own symbols
            for symbol in self._by_node.get(node_id, ()):
                if self._tau.cond(symbol).accepts(value):
                    result.append(symbol)
            return result
        for symbol in self._by_label.get(label, ()):
            cond = self._tau.cond(symbol)
            if forced:
                pinned = cond.forced_value()
                if pinned is None or not values_equal(pinned, value):
                    continue
            elif not cond.accepts(value):
                continue
            result.append(symbol)
        # a fresh node may also land on a data node with equal label/value
        for data_id, symbols in self._by_node.items():
            info_label = self._incomplete.data_label(data_id)
            info_value = self._incomplete.data_value(data_id)
            if info_label == label and values_equal(info_value, value):
                for symbol in symbols:
                    if self._tau.cond(symbol).accepts(value):
                        result.append(symbol)
        return result

    # -- possible ---------------------------------------------------------------

    def possible_sets(self) -> Dict[NodeId, FrozenSet[str]]:
        tree, tau = self._prefix, self._tau
        with _span("certainty.possible_sets") as sp:
            poss: Dict[NodeId, FrozenSet[str]] = {}
            for node_id in reversed(list(tree.node_ids())):
                children = tree.children(node_id)
                good: Set[str] = set()
                for symbol in self._candidates(node_id, forced=False):
                    if self._possibly_hosts(symbol, children, poss):
                        good.add(symbol)
                poss[node_id] = frozenset(good)
            if _OBS.enabled:
                metrics = _OBS.metrics
                metrics.inc("certainty.possible_sets_calls")
                metrics.observe("certainty.nodes_processed", len(poss))
                if sp is not None:
                    sp.attrs.update(nodes=len(poss), symbols=len(tau.symbols()))
            return poss

    def _possibly_hosts(
        self,
        symbol: str,
        children: Tuple[NodeId, ...],
        poss: Dict[NodeId, FrozenSet[str]],
    ) -> bool:
        if not children:
            return True  # extra required children can always be added
        for atom in self._tau.mu(symbol):
            slots = {
                entry: (0, mult.max_count) for entry, mult in atom.items()
            }
            allowed = {
                child: [entry for entry in slots if entry in poss[child]]
                for child in children
            }
            if feasible_assignment(list(children), slots, allowed) is not None:
                return True
        return False

    # -- certain ----------------------------------------------------------------

    def certain_sets(self) -> Dict[NodeId, FrozenSet[str]]:
        tree, tau = self._prefix, self._tau
        with _span("certainty.certain_sets") as sp:
            cert: Dict[NodeId, FrozenSet[str]] = {}
            for node_id in reversed(list(tree.node_ids())):
                children = tree.children(node_id)
                good: Set[str] = set()
                for symbol in self._candidates(node_id, forced=True):
                    if all(
                        self._certainly_hosts(atom, children, cert)
                        for atom in tau.mu(symbol)
                    ):
                        good.add(symbol)
                cert[node_id] = frozenset(good)
            if _OBS.enabled:
                metrics = _OBS.metrics
                metrics.inc("certainty.certain_sets_calls")
                metrics.observe("certainty.nodes_processed", len(cert))
                if sp is not None:
                    sp.attrs.update(nodes=len(cert), symbols=len(tau.symbols()))
            return cert

    def _certainly_hosts(self, atom, children, cert) -> bool:
        """Every tree built with this atom must contain all the children:
        an injective matching into entries with guaranteed presence."""
        if not children:
            return True
        adjacency = {
            child: [
                entry
                for entry, mult in atom.items()
                if mult.required and entry in cert[child]
            ]
            for child in children
        }
        return has_perfect_matching(list(children), adjacency)
