"""Bounded enumeration of the trees represented by an incomplete tree.

This is the library's *test oracle*: the representation-system
identities proved in the paper (rep(T') = rep(T) ∩ q⁻¹(A),
rep(q(T)) = q(rep(T)), certain/possible prefix, ...) are property-tested
by enumerating rep(·) up to a node budget and comparing.

Data values are chosen from representative samples of each symbol's
condition, optionally augmented with caller-supplied pivot values
(typically the constants of all conditions under test — one value per
interval of the Lemma 2.3 decomposition is enough to exercise every
behaviour).

Enumerated trees use fresh node ids except for data nodes, which keep
their identity; :func:`canonical_form` compares trees up to renaming of
the non-data ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.multiplicity import Atom, Mult
from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.values import Value, ValueInput, as_value
from .conditional import ConditionalTreeType
from .incomplete_tree import IncompleteTree

#: Placeholder id assigned during generation, replaced in a final pass.
_FRESH = "\x00fresh"


def enumerate_trees(
    incomplete: IncompleteTree,
    max_nodes: int = 6,
    values_per_cond: int = 1,
    extra_values: Iterable[ValueInput] = (),
    max_trees: Optional[int] = 20000,
    per_mult_cap: int = 2,
) -> List[DataTree]:
    """All trees of ``rep(incomplete)`` with at most ``max_nodes`` nodes,
    over representative data values.

    ``per_mult_cap`` bounds how many children one ``+``/``*`` entry may
    spawn.  Duplicate shapes (same canonical form) are removed.
    """
    tau = incomplete.type.normalized()
    pivots = [as_value(v) for v in extra_values]
    ctx = _Context(incomplete, tau, values_per_cond, pivots, per_mult_cap)

    result: List[DataTree] = []
    seen: Set[object] = set()
    anchored = incomplete.data_node_ids()

    def emit(tree: DataTree) -> bool:
        form = canonical_form(tree, anchored)
        if form not in seen:
            seen.add(form)
            result.append(tree)
        return max_trees is None or len(result) < max_trees

    if incomplete.allows_empty:
        if not emit(DataTree.empty()):
            return result
    for root_symbol in sorted(tau.roots):
        for spec in ctx.subtrees(root_symbol, max_nodes):
            tree = _with_fresh_ids(spec, anchored)
            if tree is not None and not emit(tree):
                return result
    return result


def canonical_form(tree: DataTree, anchored: Iterable[NodeId] = ()) -> object:
    """A hashable form identifying trees up to renaming of non-anchored ids."""
    anchored_set = set(anchored)
    if tree.is_empty():
        return ("empty",)

    def walk(node_id: NodeId) -> object:
        ident = node_id if node_id in anchored_set else None
        kids = tuple(sorted((walk(c) for c in tree.children(node_id)), key=repr))
        return (tree.label(node_id), tree.value(node_id), ident, kids)

    return walk(tree.root)


def answer_set(
    query,
    trees: Iterable[DataTree],
    anchored: Iterable[NodeId] = (),
) -> Set[object]:
    """Canonical forms of ``q(T)`` over a collection of trees."""
    return {canonical_form(query.evaluate(t), anchored) for t in trees}


class _Context:
    """Shared state for one enumeration run."""

    def __init__(
        self,
        incomplete: IncompleteTree,
        tau: ConditionalTreeType,
        values_per_cond: int,
        pivots: Sequence[Value],
        per_mult_cap: int,
    ):
        self._incomplete = incomplete
        self._tau = tau
        self._per_mult_cap = per_mult_cap
        self._node_ids = incomplete.data_node_ids()
        self._options: Dict[str, List[Tuple[Optional[NodeId], str, Value]]] = {}
        for symbol in tau.symbols():
            target = tau.sigma(symbol)
            cond = tau.cond(symbol)
            options: List[Tuple[Optional[NodeId], str, Value]] = []
            if target in self._node_ids:
                label = incomplete.data_label(target)
                value = incomplete.data_value(target)
                if cond.accepts(value):
                    options.append((target, label, value))
            else:
                values: List[Value] = []
                for pivot in pivots:
                    if cond.accepts(pivot) and pivot not in values:
                        values.append(pivot)
                for sample in cond.samples(values_per_cond):
                    if sample not in values:
                        values.append(sample)
                options.extend((None, target, value) for value in values)
            self._options[symbol] = options

    # Enumeration is lazy; recursion carries a node budget.

    def subtrees(self, symbol: str, budget: int) -> Iterator[NodeSpec]:
        if budget <= 0:
            return
        options = self._options[symbol]
        if not options:
            return
        for atom in self._tau.mu(symbol):
            for forest in self._forests_for_atom(atom, budget - 1):
                for node_id, label, value in options:
                    ident = node_id if node_id is not None else _FRESH
                    yield NodeSpec(ident, label, value, forest)

    def _forests_for_atom(
        self, atom: Atom, budget: int
    ) -> Iterator[Tuple[NodeSpec, ...]]:
        entries = list(atom.items())
        yield from self._expand_entries(entries, budget)

    def _expand_entries(
        self, entries: List[Tuple[str, Mult]], budget: int
    ) -> Iterator[Tuple[NodeSpec, ...]]:
        if not entries:
            yield ()
            return
        (symbol, mult), rest = entries[0], entries[1:]
        min_rest = sum(m.min_count for _s, m in rest)
        max_here = mult.max_count
        cap = self._per_mult_cap if max_here is None else max_here
        cap = min(cap, budget - min_rest)
        for count in range(mult.min_count, cap + 1):
            for group in self._groups(symbol, count, budget - min_rest):
                used = sum(_size(spec) for spec in group)
                for rest_forest in self._expand_entries(rest, budget - used):
                    yield group + rest_forest

    def _groups(
        self, symbol: str, count: int, budget: int
    ) -> Iterator[Tuple[NodeSpec, ...]]:
        if count == 0:
            yield ()
            return
        if budget < count:
            return
        for first in self.subtrees(symbol, budget - (count - 1)):
            used = _size(first)
            for rest in self._groups(symbol, count - 1, budget - used):
                yield (first,) + rest


def _size(spec: NodeSpec) -> int:
    return 1 + sum(_size(child) for child in spec.children)


def _with_fresh_ids(spec: NodeSpec, anchored: Set[NodeId]) -> Optional[DataTree]:
    """Replace placeholder ids with unique fresh ids; reject trees where a
    data-node id would occur twice."""
    counter = [0]
    seen: Set[NodeId] = set()
    ok = [True]

    def walk(current: NodeSpec) -> NodeSpec:
        if current.id == _FRESH:
            while True:
                ident = f"_e{counter[0]}"
                counter[0] += 1
                if ident not in anchored and ident not in seen:
                    break
            seen.add(ident)
        else:
            ident = current.id
            if ident in seen:
                ok[0] = False
            seen.add(ident)
        return NodeSpec(ident, current.label, current.value, tuple(walk(c) for c in current.children))

    rebuilt = walk(spec)
    if not ok[0]:
        return None
    return DataTree.build(rebuilt)
