"""Conditional tree types with specialization (paper Section 2).

A *simple conditional tree type* extends tree types with disjunctions of
multiplicity atoms and a condition per symbol.  A *conditional tree
type* adds a specialization mapping σ from a specialized alphabet Σ' to
the element alphabet Σ (for incomplete trees, to Σ ∪ N where N are node
ids): several specialized symbols may describe the same element name in
different contexts — the analogue of states in an unranked tree
automaton.

This module provides:

* :class:`ConditionalTreeType` — the representation itself;
* emptiness in PTIME (Lemma 2.5) via a productivity fixpoint;
* useful-symbol computation (Corollary 2.6) and :meth:`normalized`,
  which removes dead symbols/atoms so downstream algorithms can assume
  every remaining symbol is realizable;
* membership checking ``tree ∈ rep(τ)`` via bottom-up typing with
  bounded child assignment (:func:`repro.core.matching.feasible_assignment`).

Symbols are plain strings.  σ targets are also strings; whether a target
is an element label or a data-node id is decided by the caller (an
:class:`~repro.incomplete.incomplete_tree.IncompleteTree` supplies its
node-id set).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.conditions import Cond
from ..core.matching import feasible_assignment
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.tree import DataTree, NodeId
from ..obs.state import STATE as _OBS
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF

#: ``candidates(tree, node_id)`` -> symbols that may type this node.
CandidatesFn = Callable[[DataTree, NodeId], Iterable[str]]


class ConditionalTreeType:
    """A conditional tree type ``(Σ', R, µ, cond, σ)``.

    Immutable.  ``mu`` maps every symbol to a :class:`Disjunction` of
    multiplicity atoms over symbols; ``cond`` to a condition on the data
    value; ``sigma`` to the specialized target (element label or node id).
    A simple conditional tree type is the special case where σ is the
    identity.
    """

    __slots__ = ("_roots", "_mu", "_cond", "_sigma", "_fingerprint")

    def __init__(
        self,
        roots: Iterable[str],
        mu: Mapping[str, Disjunction],
        cond: Mapping[str, Cond],
        sigma: Mapping[str, str],
    ):
        intern = _PERF.pool if _PERF.enabled else None
        self._sigma: Dict[str, str] = (
            {intern.symbol(s): intern.symbol(t) for s, t in sigma.items()}
            if intern is not None
            else dict(sigma)
        )
        symbols = set(self._sigma)
        self._roots: FrozenSet[str] = frozenset(roots)
        if not self._roots <= symbols:
            unknown = sorted(self._roots - symbols)
            raise ValueError(f"unknown root symbols: {unknown}")
        self._mu: Dict[str, Disjunction] = {}
        self._cond: Dict[str, Cond] = {}
        for symbol in symbols:
            disjunction = mu.get(symbol, Disjunction.leaf())
            for atom in disjunction:
                for child in atom.symbols:
                    if child not in symbols:
                        raise ValueError(
                            f"rule for {symbol!r} mentions unknown symbol {child!r}"
                        )
            if intern is not None:
                disjunction = intern.disjunction(disjunction)
            self._mu[symbol] = disjunction
            condition = cond.get(symbol, Cond.true())
            self._cond[symbol] = (
                intern.cond(condition) if intern is not None else condition
            )
        self._fingerprint: Optional[tuple] = None

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def simple(
        roots: Iterable[str],
        mu: Mapping[str, Disjunction],
        cond: Optional[Mapping[str, Cond]] = None,
    ) -> "ConditionalTreeType":
        """A simple conditional tree type (σ = identity)."""
        symbols = set(mu)
        for disjunction in mu.values():
            symbols.update(disjunction.symbols())
        symbols.update(roots)
        return ConditionalTreeType(
            roots, mu, cond or {}, {symbol: symbol for symbol in symbols}
        )

    @staticmethod
    def from_tree_type(tree_type) -> "ConditionalTreeType":
        """Lift a plain :class:`~repro.core.treetype.TreeType` (σ = id,
        cond = true, one atom per symbol)."""
        mu = {
            label: Disjunction.single(tree_type.atom(label))
            for label in tree_type.alphabet
        }
        return ConditionalTreeType.simple(tree_type.roots, mu)

    # -- accessors ---------------------------------------------------------------

    @property
    def roots(self) -> FrozenSet[str]:
        return self._roots

    def symbols(self) -> FrozenSet[str]:
        return frozenset(self._sigma)

    def mu(self, symbol: str) -> Disjunction:
        return self._mu[symbol]

    def cond(self, symbol: str) -> Cond:
        return self._cond[symbol]

    def sigma(self, symbol: str) -> str:
        return self._sigma[symbol]

    def sigma_map(self) -> Dict[str, str]:
        return dict(self._sigma)

    def symbols_for_target(self, target: str) -> Tuple[str, ...]:
        """All symbols specializing the given label / node id."""
        return tuple(s for s, t in sorted(self._sigma.items()) if t == target)

    def with_roots(self, roots: Iterable[str]) -> "ConditionalTreeType":
        """Same type with a different root set (the paper's ``T_a``)."""
        return ConditionalTreeType(roots, self._mu, self._cond, self._sigma)

    def size(self) -> int:
        """Representation size: symbols plus total atom entries.

        This is the measurement used by the blowup experiments (E6).
        """
        return sum(1 + self._mu[s].size() for s in self._sigma)

    def cache_key(self) -> tuple:
        """A structural fingerprint usable as a memo-table key.

        Covers everything :meth:`__eq__` inspects (roots, µ, cond, σ in
        sorted symbol order), so equal fingerprints imply equal types.
        Computed once and stored — types are immutable.
        """
        key = self._fingerprint
        if key is None:
            key = (
                self._roots,
                tuple(
                    (s, self._mu[s], self._cond[s], self._sigma[s])
                    for s in sorted(self._sigma)
                ),
            )
            self._fingerprint = key
        return key

    # -- emptiness / usefulness (Lemma 2.5, Corollary 2.6) -------------------------

    def productive_symbols(self) -> FrozenSet[str]:
        """Symbols that admit at least one finite tree.

        A symbol is productive iff its condition is satisfiable and some
        atom of its disjunction has all *required* (multiplicity 1/+)
        entries productive.  Computed as a least fixpoint — the CFG
        emptiness argument behind Lemma 2.5.
        """
        cache = _PERF.caches["emptiness"] if _PERF.enabled else None
        if cache is not None:
            key = ("productive", self.cache_key())
            cached = cache.get(key)
            if cached is not _MISS:
                return cached
        productive: Set[str] = set()
        rounds = 0
        changed = True
        while changed:
            rounds += 1
            changed = False
            for symbol in self._sigma:
                if symbol in productive:
                    continue
                if not self._cond[symbol].satisfiable():
                    continue
                for atom in self._mu[symbol]:
                    if all(req in productive for req in atom.required_symbols()):
                        productive.add(symbol)
                        changed = True
                        break
        if _OBS.enabled:
            metrics = _OBS.metrics
            metrics.inc("emptiness.productivity_calls")
            metrics.observe("emptiness.fixpoint_rounds", rounds)
        result = frozenset(productive)
        if cache is not None:
            cache.put(key, result)
        return result

    def is_empty(self) -> bool:
        """Emptiness of rep(τ) — PTIME (Lemma 2.5)."""
        if _OBS.enabled:
            _OBS.metrics.inc("emptiness.is_empty_calls")
        return not (self._roots & self.productive_symbols())

    def useful_symbols(self) -> FrozenSet[str]:
        """Symbols occurring in at least one tree of rep(τ) (Cor 2.6).

        A symbol is useful iff it is productive and reachable from a
        productive root through realizable atoms.
        """
        productive = self.productive_symbols()
        useful: Set[str] = set(self._roots & productive)
        frontier = list(useful)
        while frontier:
            symbol = frontier.pop()
            for atom in self._mu[symbol]:
                if not all(req in productive for req in atom.required_symbols()):
                    continue  # unrealizable atom
                for child in atom.symbols:
                    if child in productive and child not in useful:
                        useful.add(child)
                        frontier.append(child)
        return frozenset(useful)

    def normalized(self) -> "ConditionalTreeType":
        """Remove dead symbols and unrealizable atoms.

        In the result every symbol is useful, every atom realizable, and
        optional entries for dead symbols are dropped.  rep() is
        preserved.  Idempotent.
        """
        cache = _PERF.caches["normalize"] if _PERF.enabled else None
        if cache is not None:
            key = self.cache_key()
            cached = cache.get(key)
            if cached is not _MISS:
                return cached
        useful = self.useful_symbols()

        def clean(atom: Atom) -> Optional[Atom]:
            entries = []
            for child, mult in atom.items():
                if child in useful:
                    entries.append((child, mult))
                elif mult.required:
                    return None  # atom unrealizable
                # optional dead entry: drop silently
            return Atom(entries)

        mu = {
            symbol: self._mu[symbol].map_atoms(clean)
            for symbol in useful
        }
        cond = {symbol: self._cond[symbol] for symbol in useful}
        sigma = {symbol: self._sigma[symbol] for symbol in useful}
        result = ConditionalTreeType(self._roots & useful, mu, cond, sigma)
        if cache is not None:
            result = _PERF.pool.type(result)
            cache.put(key, result)
        return result

    # -- membership ------------------------------------------------------------------

    def default_candidates(self) -> CandidatesFn:
        """Candidates by element label (for simple conditional types)."""
        by_target: Dict[str, List[str]] = {}
        for symbol, target in self._sigma.items():
            by_target.setdefault(target, []).append(symbol)

        def candidates(tree: DataTree, node_id: NodeId) -> Iterable[str]:
            return by_target.get(tree.label(node_id), ())

        return candidates

    def typings(
        self, tree: DataTree, candidates: Optional[CandidatesFn] = None
    ) -> Dict[NodeId, FrozenSet[str]]:
        """Bottom-up type sets: for each node, the symbols that can type
        its subtree."""
        if candidates is None:
            candidates = self.default_candidates()
        result: Dict[NodeId, FrozenSet[str]] = {}
        order = list(tree.node_ids())
        for node_id in reversed(order):  # children before parents (pre-order reversed)
            value = tree.value(node_id)
            kids = tree.children(node_id)
            possible: Set[str] = set()
            for symbol in candidates(tree, node_id):
                if not self._cond[symbol].accepts(value):
                    continue
                if self._children_fit(symbol, kids, result):
                    possible.add(symbol)
            result[node_id] = frozenset(possible)
        return result

    def _children_fit(
        self,
        symbol: str,
        children: Tuple[NodeId, ...],
        typesets: Mapping[NodeId, FrozenSet[str]],
    ) -> bool:
        for atom in self._mu[symbol]:
            if not children and not atom.required_symbols():
                return True
            slots = {
                entry: (mult.min_count, mult.max_count)
                for entry, mult in atom.items()
            }
            allowed = {
                child: [entry for entry in slots if entry in typesets[child]]
                for child in children
            }
            if feasible_assignment(list(children), slots, allowed) is not None:
                return True
        return False

    def contains(
        self, tree: DataTree, candidates: Optional[CandidatesFn] = None
    ) -> bool:
        """``tree ∈ rep(τ)`` (empty trees are never in rep of a type)."""
        if tree.is_empty():
            return False
        typesets = self.typings(tree, candidates)
        return bool(typesets[tree.root] & self._roots)

    # -- rewriting --------------------------------------------------------------------

    def renamed(self, mapping: Mapping[str, str]) -> "ConditionalTreeType":
        """Rename symbols injectively."""
        values = list(mapping.values())
        if len(values) != len(set(values)):
            raise ValueError("symbol renaming must be injective")

        def r(symbol: str) -> str:
            return mapping.get(symbol, symbol)

        return ConditionalTreeType(
            [r(s) for s in self._roots],
            {r(s): d.map_atoms(lambda a: a.rename(mapping)) for s, d in self._mu.items()},
            {r(s): c for s, c in self._cond.items()},
            {r(s): t for s, t in self._sigma.items()},
        )

    # -- rendering --------------------------------------------------------------------

    def pretty(self) -> str:
        """Paper-style textual rendering of the rules."""
        lines = ["roots: " + " ".join(sorted(self._roots))]
        for symbol in sorted(self._sigma):
            target = self._sigma[symbol]
            spec = f" [σ→{target}]" if target != symbol else ""
            cond = self._cond[symbol]
            cond_text = "" if cond.is_true() else f"  cond: {cond!r}"
            lines.append(f"{symbol}{spec} -> {self._mu[symbol]!r}{cond_text}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, ConditionalTreeType):
            return NotImplemented
        return (
            self._roots == other._roots
            and self._mu == other._mu
            and self._cond == other._cond
            and self._sigma == other._sigma
        )

    def __hash__(self) -> int:
        return hash((self._roots, tuple(sorted(self._sigma.items()))))

    def __repr__(self) -> str:
        return (
            f"ConditionalTreeType({len(self._sigma)} symbols, "
            f"roots={sorted(self._roots)})"
        )
