"""Incomplete-information representation: conditional tree types and
incomplete trees (paper Section 2), with the Theorem 2.8 decision
procedures and a brute-force enumeration oracle."""

from .certainty import certain_prefix, incomplete_equivalent, possible_prefix
from .conditional import ConditionalTreeType
from .enumerate import answer_set, canonical_form, enumerate_trees
from .incomplete_tree import DataNode, IncompleteTree, data_nodes_from_tree

__all__ = [
    "ConditionalTreeType",
    "DataNode",
    "IncompleteTree",
    "answer_set",
    "canonical_form",
    "certain_prefix",
    "data_nodes_from_tree",
    "enumerate_trees",
    "incomplete_equivalent",
    "possible_prefix",
]
