"""Incomplete trees (paper Definition 2.7).

An incomplete tree ``(N, λ, ν, τ)`` combines

* a finite set N of *data nodes* with fixed labels λ and values ν — the
  part of the input document already retrieved, and
* a conditional tree type τ over N ∪ Σ describing how full documents may
  extend the known part.

Requirement (4) of the definition — in every represented tree each data
node occurs at most once, and the parent of a data node is a data node —
is enforced here by a structural validator (:meth:`IncompleteTree.validate`):
node-id symbols occur with multiplicity 1 or ?, appear only inside rules
of other node-id symbols (or at the root), and each node id has a unique
anchor parent.  All representations produced by this library satisfy the
structural form.

Example 2.2 shows the empty tree must be representable as an answer; we
carry an explicit ``allows_empty`` flag instead of the paper's
``cond = false`` trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.conditions import Cond
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.values import Value, ValueInput, as_value, value_repr, values_equal
from .conditional import ConditionalTreeType


@dataclass(frozen=True)
class DataNode:
    """λ and ν of one data node."""

    label: str
    value: Value


class IncompleteTree:
    """An incomplete tree over Σ: ``(N, λ, ν, τ)`` plus ``allows_empty``."""

    __slots__ = ("_nodes", "_type", "_allows_empty", "_fingerprint")

    def __init__(
        self,
        nodes: Mapping[NodeId, DataNode],
        tree_type: ConditionalTreeType,
        allows_empty: bool = False,
    ):
        self._nodes: Dict[NodeId, DataNode] = dict(nodes)
        self._type = tree_type
        self._allows_empty = bool(allows_empty)
        self._fingerprint: Optional[tuple] = None
        for symbol in tree_type.symbols():
            target = tree_type.sigma(symbol)
            if target in self._nodes:
                continue
            # target must be an element label: it must not look like a
            # data node we do not know about -- nothing to check here,
            # labels and ids share the string namespace by design.

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def from_type(tree_type: ConditionalTreeType) -> "IncompleteTree":
        """No data nodes at all — knowledge is just the type."""
        return IncompleteTree({}, tree_type)

    @staticmethod
    def nothing(allows_empty: bool = True) -> "IncompleteTree":
        """Represents only the empty tree (or nothing at all)."""
        return IncompleteTree(
            {}, ConditionalTreeType.simple([], {}), allows_empty
        )

    # -- accessors ------------------------------------------------------------------

    @property
    def type(self) -> ConditionalTreeType:
        return self._type

    @property
    def allows_empty(self) -> bool:
        return self._allows_empty

    def data_node_ids(self) -> FrozenSet[NodeId]:
        return frozenset(self._nodes)

    def data_label(self, node_id: NodeId) -> str:
        return self._nodes[node_id].label

    def data_value(self, node_id: NodeId) -> Value:
        return self._nodes[node_id].value

    def data_nodes(self) -> Dict[NodeId, DataNode]:
        return dict(self._nodes)

    def size(self) -> int:
        """Representation size (data nodes + type size) for E6."""
        return len(self._nodes) + self._type.size()

    def cache_key(self) -> tuple:
        """Structural fingerprint: (data nodes, type fingerprint, flag)."""
        key = self._fingerprint
        if key is None:
            key = (
                frozenset(
                    (nid, info.label, info.value) for nid, info in self._nodes.items()
                ),
                self._type.cache_key(),
                self._allows_empty,
            )
            self._fingerprint = key
        return key

    def with_allows_empty(self, allows_empty: bool) -> "IncompleteTree":
        return IncompleteTree(self._nodes, self._type, allows_empty)

    def normalized(self) -> "IncompleteTree":
        """Normalize the underlying type (drop dead symbols/atoms)."""
        return IncompleteTree(self._nodes, self._type.normalized(), self._allows_empty)

    # -- validation (requirement (4) of Definition 2.7) ----------------------------

    def validate(self) -> List[str]:
        """Structural checks; empty list when well-formed."""
        problems: List[str] = []
        tau = self._type
        node_ids = set(self._nodes)
        anchor_parent: Dict[NodeId, Set[Optional[NodeId]]] = {}
        for symbol in tau.symbols():
            owner = tau.sigma(symbol)
            owner_is_node = owner in node_ids
            if owner_is_node:
                expected = self._nodes[owner].label
                # node-id symbols must pin the data value
                forced = tau.cond(symbol).forced_value()
                if forced is None or not values_equal(forced, self._nodes[owner].value):
                    problems.append(
                        f"symbol {symbol!r} specializes node {owner!r} but its "
                        f"condition does not force value {value_repr(self._nodes[owner].value)}"
                    )
            for atom in tau.mu(symbol):
                for child, mult in atom.items():
                    child_target = tau.sigma(child)
                    if child_target in node_ids:
                        if mult.max_count != 1:
                            problems.append(
                                f"node-id symbol {child!r} (node {child_target!r}) "
                                f"occurs with multiplicity {mult.value!r} in rule of {symbol!r}"
                            )
                        if not owner_is_node:
                            problems.append(
                                f"node-id symbol {child!r} appears under non-data "
                                f"symbol {symbol!r} (violates requirement 4)"
                            )
                        else:
                            anchor_parent.setdefault(child_target, set()).add(owner)
        for symbol in tau.roots:
            target = tau.sigma(symbol)
            if target in node_ids:
                anchor_parent.setdefault(target, set()).add(None)
        for node_id, parents in anchor_parent.items():
            if len(parents) > 1:
                problems.append(
                    f"data node {node_id!r} is anchored under several parents: "
                    f"{sorted(str(p) for p in parents)}"
                )
        return problems

    # -- semantics --------------------------------------------------------------------

    def _candidates(self):
        tau = self._type
        node_ids = set(self._nodes)
        by_label: Dict[str, List[str]] = {}
        by_node: Dict[str, List[str]] = {}
        for symbol in tau.symbols():
            target = tau.sigma(symbol)
            if target in node_ids:
                by_node.setdefault(target, []).append(symbol)
            else:
                by_label.setdefault(target, []).append(symbol)

        def candidates(tree: DataTree, node_id: NodeId) -> Iterable[str]:
            if node_id in node_ids:
                info = self._nodes[node_id]
                if tree.label(node_id) != info.label or not values_equal(
                    tree.value(node_id), info.value
                ):
                    return ()
                return by_node.get(node_id, ())
            return by_label.get(tree.label(node_id), ())

        return candidates

    def contains(self, tree: DataTree) -> bool:
        """``tree ∈ rep(T)``.

        Data-node ids appearing in ``tree`` must occupy their reserved
        positions (label, value and typing by a node-id symbol); other
        nodes must use fresh ids.
        """
        if tree.is_empty():
            return self._allows_empty
        return self._type.contains(tree, self._candidates())

    def is_empty(self) -> bool:
        """``rep(T) = ∅``? PTIME, as for conditional tree types."""
        if self._allows_empty:
            return False
        return self._type.is_empty()

    # -- the data tree Td --------------------------------------------------------------

    def data_tree(self) -> DataTree:
        """The tree formed by the data nodes (paper's ``Td``).

        Parent edges are recovered from the anchoring structure of τ.
        For reachable incomplete trees (produced by Refine) this is a
        prefix of every represented tree.
        """
        tau = self._type
        node_ids = set(self._nodes)
        parent: Dict[NodeId, Optional[NodeId]] = {}
        for symbol in tau.symbols():
            owner = tau.sigma(symbol)
            if owner not in node_ids:
                continue
            for atom in tau.mu(symbol):
                for child, _mult in atom.items():
                    child_target = tau.sigma(child)
                    if child_target in node_ids:
                        parent.setdefault(child_target, owner)
        root: Optional[NodeId] = None
        for symbol in tau.roots:
            target = tau.sigma(symbol)
            if target in node_ids:
                root = target
                parent.setdefault(target, None)
        if root is None:
            return DataTree.empty()

        children: Dict[NodeId, List[NodeId]] = {}
        for child, par in parent.items():
            if par is not None:
                children.setdefault(par, []).append(child)

        def build(node_id: NodeId) -> NodeSpec:
            info = self._nodes[node_id]
            kids = [build(child) for child in sorted(children.get(node_id, []))]
            return node(node_id, info.label, info.value, kids)

        return DataTree.build(build(root))

    # -- unambiguity (Definition 3.1) -----------------------------------------------

    def is_unambiguous(self, strict: bool = False) -> bool:
        """Definition 3.1.

        By default only conditions (1) and (2) are checked — these are
        what the product construction of Lemma 3.3 relies on.  Condition
        (3) (every label with several specializations is anchored by a
        data node) is violated by the paper's *own* Lemma 3.2 output
        (the viol/fail pair); our Theorem 3.5 implementation handles its
        absence by disjunct expansion, so it is only reported in
        ``strict`` mode.
        """
        return not self.ambiguity_reasons(strict=strict)

    def ambiguity_reasons(self, strict: bool = False) -> List[str]:
        """Why Definition 3.1 fails (empty when unambiguous)."""
        reasons: List[str] = []
        tau = self._type
        node_ids = set(self._nodes)
        for symbol in tau.symbols():
            for atom in tau.mu(symbol):
                star_by_label: Dict[str, List[str]] = {}
                anchored_labels: Set[str] = set()
                for child, mult in atom.items():
                    target = tau.sigma(child)
                    if target in node_ids:
                        if mult is not Mult.ONE:
                            reasons.append(
                                f"(1) node-id entry {child!r} in rule of {symbol!r} "
                                f"has multiplicity {mult.value!r}, expected 1"
                            )
                        anchored_labels.add(self._nodes[target].label)
                    else:
                        if mult is not Mult.STAR:
                            reasons.append(
                                f"(1) missing-information entry {child!r} in rule of "
                                f"{symbol!r} has multiplicity {mult.value!r}, expected *"
                            )
                        star_by_label.setdefault(target, []).append(child)
                for label, group in star_by_label.items():
                    if len(group) < 2:
                        continue
                    for i in range(len(group)):
                        for j in range(i + 1, len(group)):
                            both = tau.cond(group[i]) & tau.cond(group[j])
                            if both.satisfiable():
                                reasons.append(
                                    f"(2) entries {group[i]!r} and {group[j]!r} of "
                                    f"{symbol!r} share label {label!r} with "
                                    f"overlapping conditions"
                                )
                    if strict and label not in anchored_labels:
                        reasons.append(
                            f"(3) label {label!r} has multiple specializations in "
                            f"rule of {symbol!r} but no data-node entry with that label"
                        )
        return reasons

    # -- rendering ----------------------------------------------------------------------

    def pretty(self) -> str:
        lines = []
        if self._nodes:
            lines.append("data nodes:")
            for node_id in sorted(self._nodes):
                info = self._nodes[node_id]
                lines.append(
                    f"  {node_id}: {info.label} = {value_repr(info.value)}"
                )
        if self._allows_empty:
            lines.append("(the empty tree is allowed)")
        lines.append(self._type.pretty())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"IncompleteTree({len(self._nodes)} data nodes, "
            f"{len(self._type.symbols())} type symbols"
            f"{', +empty' if self._allows_empty else ''})"
        )


def data_nodes_from_tree(tree: DataTree) -> Dict[NodeId, DataNode]:
    """Extract (λ, ν) for every node of a data tree."""
    return {
        node_id: DataNode(tree.label(node_id), tree.value(node_id))
        for node_id in tree.node_ids()
    }
