"""Context-var-scoped fault injection hooks.

Call sites across the store, cluster, and ops layers are instrumented
with::

    from ..faults.inject import armed as _faults_armed, check_site as _check_site

    if _faults_armed():
        _check_site("store.journal.append")

When nothing is armed, :func:`armed` is a single read of a module-level
integer — the hooks compile down to one predictable branch on the
always-on hot path (the E17 benchmark holds this to the ≤2% ``/ask``
p50 budget).  :func:`check_site` itself also starts with that gate, so
plain ``check_site(...)`` calls (sites whose name needs no formatting)
are safe without the explicit guard.

Arming is scoped with :func:`fault_scope`, a ``contextvars`` context
manager: concurrent requests or tasks only see a plan that was armed in
*their* context chain.  Thread pools do not inherit context, so the
cluster :class:`~repro.cluster.executor.Executor` re-arms the caller's
plan explicitly inside each task (see ``executor.submit``), and the ops
server arms its installed plan per dispatched request.

``check_site`` interprets the control effects itself — ``error`` raises
:class:`FaultInjected`, ``latency``/``stall`` sleep — and returns data
effects (``torn``, ``corrupt``, ``fsync``, ``status``) to the call
site, which knows how to damage its own medium.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from .plan import Fault, FaultPlan

#: Count of live ``fault_scope`` arms across all contexts.  The hot-path
#: gate: zero means no plan can be active anywhere, so hooks no-op with
#: a single global read.  Guarded by ``_ARMED_LOCK`` for the (rare)
#: writes; the unlocked read is safe — a stale zero only delays arming
#: until the scope's own context is consulted.
_ARMED = 0
_ARMED_LOCK = threading.Lock()

_SCOPE: ContextVar[Optional[FaultPlan]] = ContextVar("repro_fault_plan", default=None)


class FaultInjected(RuntimeError):
    """An injected fault fired at a site (deliberate, not a real error)."""

    def __init__(self, fault: Fault):
        super().__init__(f"injected fault: {fault}")
        self.fault = fault

    @property
    def site(self) -> str:
        return self.fault.site

    @property
    def effect(self) -> str:
        return self.fault.effect


def armed() -> bool:
    """Fast gate: could any plan be active?  One global read."""
    return _ARMED != 0


def active_plan() -> Optional[FaultPlan]:
    """The plan armed in the current context, if any."""
    if _ARMED == 0:
        return None
    return _SCOPE.get()


@contextmanager
def fault_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the current context until the ``with`` exits.

    Passing ``None`` is a no-op scope (convenient for call sites that
    conditionally arm).  Scopes nest; the innermost plan wins.
    """
    global _ARMED
    if plan is None:
        yield None
        return
    token = _SCOPE.set(plan)
    with _ARMED_LOCK:
        _ARMED += 1
    try:
        yield plan
    finally:
        with _ARMED_LOCK:
            _ARMED -= 1
        _SCOPE.reset(token)


def check_site(
    site: str, sleep: Callable[[float], None] = time.sleep
) -> Optional[Fault]:
    """Consult the armed plan at an injection site.

    Returns ``None`` when nothing fires.  Control effects are applied
    here (``error`` raises :class:`FaultInjected`; ``latency`` and
    ``stall`` sleep their ``ms``); data effects are returned for the
    call site to interpret.
    """
    if _ARMED == 0:
        return None
    plan = _SCOPE.get()
    if plan is None:
        return None
    fault = plan.decide(site)
    if fault is None:
        return None
    effect = fault.effect
    if effect in ("latency", "stall"):
        sleep(fault.rule.sleep_ms / 1000.0)
        return None
    if effect == "error":
        raise FaultInjected(fault)
    return fault


__all__ = [
    "FaultInjected",
    "active_plan",
    "armed",
    "check_site",
    "fault_scope",
]
