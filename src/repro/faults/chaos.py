"""Seeded chaos schedules over record / ask / crash-recover cycles.

One :func:`run_chaos_cycle` call drives a durable
:class:`~repro.mediator.webhouse.Webhouse` session through a random
workload while a seeded :class:`~repro.faults.plan.FaultPlan` tears
journal writes, fails fsyncs, and corrupts snapshots underneath it.
After every simulated crash the session is resumed and checked against
the paper's Theorem 3.5: replaying the recovered history from scratch
must land on knowledge ``incomplete_equivalent`` to what recovery
produced, and the recovered history itself must be exactly the
acknowledged pairs (plus at most the one in-flight pair a torn write
may or may not have persisted — durability is only promised once
``record`` returns).

Everything is derived from one int seed, so a failing cycle is
reproducible from the one-line spec in its :class:`ChaosResult`
(``python -m repro chaos --seed N``).  The suite in
``tests/test_chaos.py`` sweeps 50+ seeds; CI's ``chaos-smoke`` job adds
a timed soak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..incomplete.certainty import incomplete_equivalent
from ..mediator.webhouse import Webhouse
from ..refine.refine import refine_sequence
from ..store import codec as _codec
from ..store.journal import JournalError
from ..store.session import SessionStore, StoreError
from ..workloads.generators import random_history, random_tree
from .inject import FaultInjected, fault_scope
from .plan import FaultPlan, FaultRule

#: Errors that count as a crash during a chaos cycle: the injected ones
#: plus the store-layer failures they surface as.
CRASH_ERRORS = (FaultInjected, JournalError, StoreError, OSError)

#: Site/effect pool :func:`chaos_schedule` draws rules from.  Only data
#: and error effects — latency/stall are exercised by the cluster tests,
#: not the single-session durability cycle.
SCHEDULE_POOL: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("store.journal.append", ("error", "torn", "fsync")),
    ("store.snapshot.write", ("error", "torn", "corrupt")),
)

#: Armed record attempts per pair before the final disarmed one.  The
#: disarmed fallback keeps a hostile plan (e.g. ``p=0.5`` on every
#: append) from wedging a cycle; it does not weaken the checks, which
#: run after every crash regardless of how the record finally landed.
MAX_ARMED_ATTEMPTS = 6


def chaos_tree_type() -> TreeType:
    """A deliberately small schema so equivalence checks stay cheap."""
    return TreeType.parse(
        """
        root: doc
        doc -> item+
        item -> k v*
        """
    )


def chaos_schedule(seed: int, max_rules: int = 3) -> FaultPlan:
    """A reproducible random fault plan for :func:`run_chaos_cycle`.

    Draws 1..``max_rules`` rules from :data:`SCHEDULE_POOL`.  Trigger
    probabilities stay at or below 0.5 so a cycle always makes forward
    progress; some rules use ``nth``/``once`` triggers instead to pin
    single-shot faults at exact call indices.
    """
    rng = random.Random(f"chaos-plan|{seed}")
    rules: List[FaultRule] = []
    for _ in range(rng.randint(1, max_rules)):
        site, effects = SCHEDULE_POOL[rng.randrange(len(SCHEDULE_POOL))]
        effect = effects[rng.randrange(len(effects))]
        style = rng.random()
        if style < 0.3:
            rules.append(FaultRule(site, effect, nth=rng.randint(1, 6)))
        elif style < 0.5:
            rules.append(
                FaultRule(site, effect, probability=rng.uniform(0.2, 0.5), once=True)
            )
        else:
            rules.append(
                FaultRule(
                    site,
                    effect,
                    probability=rng.uniform(0.05, 0.5),
                    fraction=rng.choice((0.25, 0.5, 0.75)),
                )
            )
    return FaultPlan(rules, seed=seed)


@dataclass
class ChaosResult:
    """Outcome of one seeded cycle; ``violations`` empty means healthy."""

    seed: int
    plan_spec: str
    ops: int = 0
    records: int = 0
    crashes: int = 0
    recoveries: int = 0
    retries: int = 0
    faults_fired: int = 0
    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def repro(self) -> str:
        """The one-line reproduction command for this cycle."""
        return f"python -m repro chaos --seed {self.seed} --plan '{self.plan_spec}'"

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "plan": self.plan_spec,
            "ops": self.ops,
            "records": self.records,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "faults_fired": self.faults_fired,
            "checks": self.checks,
            "violations": list(self.violations),
            "ok": self.ok,
            "repro": self.repro(),
        }


def _pair_json(pair: Tuple[PSQuery, DataTree]) -> Tuple[object, object]:
    query, answer = pair
    return (_codec.query_to_json(query), _codec.tree_to_json(answer))


def _check_recovery(
    webhouse: Webhouse,
    acknowledged: List[Tuple[PSQuery, DataTree]],
    pending: Optional[Tuple[PSQuery, DataTree]],
    alphabet: Sequence[str],
    tree_type: TreeType,
    where: str,
    result: ChaosResult,
) -> bool:
    """Theorem 3.5 recovery checks; returns True iff ``pending`` survived.

    1. The recovered history is the acknowledged pairs, in order, plus
       at most the one in-flight pair (a torn tail may legitimately
       lose it; it must never be half-applied or reordered).
    2. The recovered knowledge is ``incomplete_equivalent`` to a
       fault-free replay of that history (Theorem 3.5: snapshot +
       suffix replay vs. pure replay agree semantically).
    """
    result.checks += 1
    recovered = [_pair_json(pair) for pair in webhouse.history]
    ack = [_pair_json(pair) for pair in acknowledged]
    with_pending = ack + [_pair_json(pending)] if pending is not None else ack
    if recovered not in (ack, with_pending):
        result.violations.append(
            f"{where}: recovered history has {len(recovered)} pairs, "
            f"expected the {len(ack)} acknowledged"
            + (" (+1 in-flight)" if pending is not None else "")
            + " — durability or ordering broken"
        )
        return False
    reference = refine_sequence(alphabet, webhouse.history, tree_type=tree_type)
    if not incomplete_equivalent(webhouse.knowledge, reference):
        result.violations.append(
            f"{where}: recovered knowledge is not equivalent to a "
            f"fault-free replay of its own {len(recovered)}-pair history "
            "(Theorem 3.5 violated)"
        )
        return False
    return len(recovered) == len(with_pending) and pending is not None


def run_chaos_cycle(
    seed: int,
    root: str,
    ops: int = 8,
    plan: Optional[FaultPlan] = None,
    snapshot_every: int = 3,
) -> ChaosResult:
    """One seeded record/crash/recover cycle against a durable session.

    ``root`` is the session-store directory (caller-owned, e.g. a tmp
    dir); the cycle creates and finally deletes ``chaos-<seed>``.
    Returns a :class:`ChaosResult` whose ``violations`` list is empty
    exactly when every recovery and the final state honored Theorem 3.5.
    """
    rng = random.Random(f"chaos-cycle|{seed}")
    tree_type = chaos_tree_type()
    alphabet = sorted(tree_type.alphabet)
    document = random_tree(tree_type, seed=rng, max_depth=4)
    pairs = random_history(tree_type, document, ops, seed=rng, max_depth=3)
    if plan is None:
        plan = chaos_schedule(seed)
    plan.reset()
    result = ChaosResult(seed=seed, plan_spec=plan.spec(), ops=ops)

    store = SessionStore(root, snapshot_every=snapshot_every)
    name = f"chaos-{seed}"
    if store.exists(name):
        store.delete(name)
    session = store.create(name, alphabet, tree_type=tree_type)
    webhouse = Webhouse(alphabet, tree_type=tree_type)
    webhouse.attach(session)

    acknowledged: List[Tuple[PSQuery, DataTree]] = []

    def crash_and_resume(
        pending: Optional[Tuple[PSQuery, DataTree]], where: str
    ) -> bool:
        """Abandon the live handle (no close — the lock is broken as a
        same-pid stale lock on reopen) and recover from disk."""
        nonlocal webhouse
        result.crashes += 1
        webhouse = Webhouse.resume(store, name)
        result.recoveries += 1
        return _check_recovery(
            webhouse, acknowledged, pending, alphabet, tree_type, where, result
        )

    try:
        for index, pair in enumerate(pairs):
            if acknowledged and rng.random() < 0.15:
                # Spontaneous crash between operations: nothing in
                # flight, so recovery must reproduce everything.
                crash_and_resume(None, f"op {index} (clean crash)")
            recorded = False
            for attempt in range(MAX_ARMED_ATTEMPTS + 1):
                armed_plan = plan if attempt < MAX_ARMED_ATTEMPTS else None
                try:
                    with fault_scope(armed_plan):
                        webhouse.record(*pair)
                    recorded = True
                    break
                except CRASH_ERRORS:
                    result.retries += 1
                    if crash_and_resume(pair, f"op {index} attempt {attempt}"):
                        recorded = True  # the torn pair actually landed
                        break
            if not recorded:
                result.violations.append(
                    f"op {index}: record never landed after "
                    f"{MAX_ARMED_ATTEMPTS} armed and 1 disarmed attempts"
                )
                break
            acknowledged.append(pair)
            result.records += 1
            if rng.random() < 0.3:
                try:
                    with fault_scope(plan):
                        webhouse.checkpoint()
                except CRASH_ERRORS:
                    crash_and_resume(None, f"op {index} (checkpoint)")

        # Final accounting: one last crash/recover, then the full-history
        # equivalence check against a completely fault-free replay.
        crash_and_resume(None, "final")
        if len(webhouse.history) != len(acknowledged):
            result.violations.append(
                f"final: {len(webhouse.history)} recovered pairs != "
                f"{len(acknowledged)} acknowledged"
            )
        result.faults_fired = plan.fires()
    finally:
        if webhouse.session is not None:
            webhouse.detach()
        try:
            store.delete(name)
        except StoreError:  # pragma: no cover - best-effort cleanup
            pass
    return result


def run_chaos_sweep(
    seeds: Sequence[int], root: str, ops: int = 8
) -> List[ChaosResult]:
    """Run many cycles; returns every result (callers filter ``.ok``)."""
    return [run_chaos_cycle(seed, root, ops=ops) for seed in seeds]


__all__ = [
    "CRASH_ERRORS",
    "ChaosResult",
    "chaos_schedule",
    "chaos_tree_type",
    "run_chaos_cycle",
    "run_chaos_sweep",
]
