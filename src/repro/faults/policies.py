"""Retry, deadline, and circuit-breaker policies.

Composable building blocks the cluster layer threads through its
scatter-gather paths (docs/ROBUSTNESS.md):

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  decorrelated jitter.  The *envelope* ``min(cap, base·mult^i)`` is
  monotone non-decreasing; every actual delay is clamped to
  ``[base, cap]``; under a deadline the total slept time never exceeds
  it (the property tests in ``tests/test_retry_policies.py`` pin all
  three).
* :class:`Deadline` — an absolute per-op budget with an injectable
  clock.
* :class:`CircuitBreaker` — closed → open after N consecutive
  failures, half-open after the cooldown, re-closed by a success.

Everything takes injectable ``clock`` / ``sleep`` / ``rng`` hooks so
tests and the chaos suite stay deterministic and instant.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type


class DeadlineExceeded(RuntimeError):
    """The per-operation time budget ran out."""


class CircuitOpen(RuntimeError):
    """The circuit breaker is open; the call was refused without trying."""

    def __init__(self, name: str, cooldown_s: float):
        super().__init__(
            f"circuit {name!r} is open (cooling down {cooldown_s:g}s)"
        )
        self.name = name
        self.cooldown_s = cooldown_s


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on an injectable monotonic clock."""

    expires_at: float
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(clock() + float(seconds), clock)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def require(self, what: str = "operation") -> None:
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + decorrelated jitter.

    ``attempts`` counts total tries (1 = no retry).  The backoff
    *envelope* for retry ``i`` (0-based) is ``min(cap_s, base_s ·
    multiplier^i)``; with ``jitter="decorrelated"`` the actual delay is
    drawn uniformly from ``[base_s, min(cap_s, max(envelope, 3·prev))]``
    (AWS-style decorrelated jitter, clamped to the envelope's cap),
    with ``jitter="none"`` the envelope is used verbatim.  Every delay
    therefore lies in ``[base_s, cap_s]``.
    """

    attempts: int = 3
    base_s: float = 0.01
    cap_s: float = 1.0
    multiplier: float = 2.0
    jitter: str = "decorrelated"  # or "none"

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError(
                f"need 0 < base_s <= cap_s, got {self.base_s}/{self.cap_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter not in ("decorrelated", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def envelope(self, retry_index: int) -> float:
        """The deterministic backoff bound for the given retry (0-based)."""
        return min(self.cap_s, self.base_s * self.multiplier ** retry_index)

    def delay(
        self,
        retry_index: int,
        rng: Optional[random.Random] = None,
        previous: float = 0.0,
    ) -> float:
        """One concrete delay, within ``[base_s, envelope(retry_index)]``."""
        bound = self.envelope(retry_index)
        if self.jitter == "none":
            return bound
        rng = rng if rng is not None else random
        high = min(self.cap_s, max(bound, 3.0 * previous))
        high = max(self.base_s, high)
        return min(bound, rng.uniform(self.base_s, high))

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The delay sequence between attempts (``attempts - 1`` values)."""
        previous = 0.0
        for index in range(self.attempts - 1):
            previous = self.delay(index, rng, previous)
            yield previous

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        deadline: Optional[Deadline] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> object:
        """Run ``fn`` with retries; re-raises the last error when spent.

        The total slept time never exceeds the deadline: each backoff is
        clamped to the remaining budget, and when the budget is already
        exhausted the last error is re-raised instead of sleeping.
        """
        previous = 0.0
        for attempt in range(self.attempts):
            try:
                return fn()
            except retry_on as exc:
                if attempt == self.attempts - 1:
                    raise
                previous = self.delay(attempt, rng, previous)
                pause = previous
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        raise
                    pause = min(pause, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


#: Circuit breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Closed → open after N consecutive failures; half-open probes after
    the cooldown; one probe success re-closes, a probe failure re-opens.

    Thread-safe; the clock is injectable so tests need not sleep.
    """

    def __init__(
        self,
        name: str = "circuit",
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._books = {"allowed": 0, "refused": 0, "opens": 0, "closes": 0}

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        """Caller holds the lock.  Applies the cooldown transition."""
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts the decision.)"""
        with self._lock:
            state = self._effective_state()
            if state == OPEN:
                self._books["refused"] += 1
                return False
            self._books["allowed"] += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._books["closes"] += 1
            self._state = CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures += 1
            trip = (
                state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            )
            if trip and self._state != OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._books["opens"] += 1

    def guard(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` under the breaker: refuse fast when open, record
        the outcome otherwise."""
        if not self.allow():
            raise CircuitOpen(self.name, self.cooldown_s)
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                **self._books,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, {self.state})"


__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "HALF_OPEN",
    "OPEN",
    "RetryPolicy",
]
