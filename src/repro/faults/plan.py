"""Seeded, serializable fault plans.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s plus an int
seed.  Each rule names one *injection site* (a dotted string such as
``store.journal.append`` — see docs/ROBUSTNESS.md for the site table),
one *effect*, and one *trigger*.  All randomness is drawn from
per-rule ``random.Random`` streams derived from ``(seed, rule index,
site)``, so a plan fires identically on every run with the same seed
and the same per-site call sequence — the property that makes a chaos
failure reproducible from its one-line repro spec.

Spec grammar (round-tripped by :meth:`FaultPlan.parse` /
:meth:`FaultPlan.spec`)::

    PLAN   := ['seed=N' ';'] RULE (';' RULE)*
    RULE   := SITE ':' EFFECT (':' PARAM)*
    EFFECT := error | latency | stall | torn | corrupt | fsync | status
    PARAM  := p=FLOAT | nth=INT | once | ms=FLOAT | status=INT | frac=FLOAT

Triggers: ``p=0.25`` fires each check with probability 0.25 (default
``p=1``, i.e. always); ``nth=3`` fires exactly on the third check of
the site; ``once`` fires on the first trigger only.  Effects are
interpreted by :func:`repro.faults.inject.check_site` (``error``,
``latency``, ``stall``) or by the call site itself (``torn``,
``corrupt``, ``fsync``, ``status``).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

#: Effect kinds a rule may carry.  ``error`` raises
#: :class:`~repro.faults.inject.FaultInjected` from ``check_site``;
#: ``latency``/``stall`` sleep ``ms`` inside ``check_site``; the data
#: effects (``torn``, ``corrupt``, ``fsync``, ``status``) are returned
#: to the call site, which knows how to damage its own medium.
EFFECTS = ("error", "latency", "stall", "torn", "corrupt", "fsync", "status")

#: Default sleep for ``stall`` when no ``ms`` is given — long enough to
#: blow any reasonable per-op deadline, short enough not to wedge tests.
DEFAULT_STALL_MS = 2000.0

#: Default sleep for ``latency`` when no ``ms`` is given.
DEFAULT_LATENCY_MS = 25.0


class FaultError(ValueError):
    """A fault plan spec cannot be parsed or is inconsistent."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: site + effect + trigger + effect parameters."""

    site: str
    effect: str
    probability: float = 1.0  # p= trigger; 1.0 means every check
    nth: Optional[int] = None  # fire exactly on the nth check (1-based)
    once: bool = False  # fire at most one time
    ms: Optional[float] = None  # latency / stall duration
    status: int = 500  # HTTP status for the ``status`` effect
    fraction: float = 0.5  # cut point for torn / corrupt damage

    def __post_init__(self) -> None:
        if not self.site or any(c.isspace() for c in self.site):
            raise FaultError(f"invalid site {self.site!r}")
        if self.effect not in EFFECTS:
            raise FaultError(f"unknown effect {self.effect!r} {EFFECTS}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"p must be within [0, 1], got {self.probability}")
        if self.nth is not None and self.nth < 1:
            raise FaultError(f"nth must be >= 1, got {self.nth}")
        if self.ms is not None and self.ms < 0:
            raise FaultError(f"ms must be >= 0, got {self.ms}")
        if not 100 <= self.status <= 599:
            raise FaultError(f"status must be an HTTP code, got {self.status}")
        if not 0.0 < self.fraction < 1.0:
            raise FaultError(f"frac must be within (0, 1), got {self.fraction}")

    @property
    def sleep_ms(self) -> float:
        """Effective sleep for latency/stall effects."""
        if self.ms is not None:
            return self.ms
        return DEFAULT_STALL_MS if self.effect == "stall" else DEFAULT_LATENCY_MS

    def spec(self) -> str:
        """The rule as one spec token (inverse of :meth:`parse`)."""
        parts = [self.site, self.effect]
        if self.probability != 1.0:
            parts.append(f"p={self.probability:g}")
        if self.nth is not None:
            parts.append(f"nth={self.nth}")
        if self.once:
            parts.append("once")
        if self.ms is not None:
            parts.append(f"ms={self.ms:g}")
        if self.status != 500:
            parts.append(f"status={self.status}")
        if self.fraction != 0.5:
            parts.append(f"frac={self.fraction:g}")
        return ":".join(parts)

    @classmethod
    def parse(cls, token: str) -> "FaultRule":
        """Parse one ``SITE:EFFECT[:PARAM]*`` token."""
        fields = [f.strip() for f in token.split(":")]
        if len(fields) < 2 or not fields[0] or not fields[1]:
            raise FaultError(f"rule {token!r} is not SITE:EFFECT[:PARAM]*")
        site, effect, params = fields[0], fields[1], fields[2:]
        kwargs: Dict[str, object] = {}
        for param in params:
            if param == "once":
                kwargs["once"] = True
                continue
            if "=" not in param:
                raise FaultError(f"bad parameter {param!r} in rule {token!r}")
            key, value = param.split("=", 1)
            try:
                if key == "p":
                    kwargs["probability"] = float(value)
                elif key == "nth":
                    kwargs["nth"] = int(value)
                elif key == "ms":
                    kwargs["ms"] = float(value)
                elif key == "status":
                    kwargs["status"] = int(value)
                elif key == "frac":
                    kwargs["fraction"] = float(value)
                else:
                    raise FaultError(f"unknown parameter {key!r} in rule {token!r}")
            except ValueError as exc:
                if isinstance(exc, FaultError):
                    raise
                raise FaultError(f"bad value {value!r} for {key!r} in {token!r}")
        return cls(site, effect, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Fault:
    """One fired rule, handed to the call site for interpretation."""

    site: str
    rule: FaultRule

    @property
    def effect(self) -> str:
        return self.rule.effect

    @property
    def status(self) -> int:
        return self.rule.status

    @property
    def fraction(self) -> float:
        return self.rule.fraction

    def __str__(self) -> str:
        return f"{self.rule.spec()} @ {self.site}"


class _RuleState:
    """Mutable per-rule books: check/fire counters + derived RNG."""

    __slots__ = ("rng", "checks", "fires")

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.checks = 0
        self.fires = 0


class FaultPlan:
    """A reproducible schedule of fault rules over named sites.

    The plan carries all mutable trigger state (per-rule check/fire
    counters and RNG streams) behind one lock, so a single plan may be
    consulted from many threads (the ops server's handler pool, the
    cluster executor) while staying deterministic *per site call
    sequence*.  :meth:`reset` rewinds the plan to its initial state.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self._rules: Tuple[FaultRule, ...] = tuple(rules)
        self._seed = int(seed)
        self._lock = threading.Lock()
        self._states: List[_RuleState] = []
        self.reset()

    # -- identity ------------------------------------------------------------

    @property
    def rules(self) -> Tuple[FaultRule, ...]:
        return self._rules

    @property
    def seed(self) -> int:
        return self._seed

    def spec(self) -> str:
        """One-line spec that :meth:`parse` reads back identically."""
        tokens = [f"seed={self._seed}"] if self._seed else []
        tokens.extend(rule.spec() for rule in self._rules)
        return ";".join(tokens) if tokens else "seed=0"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a plan spec (see the module docstring grammar)."""
        seed = 0
        rules: List[FaultRule] = []
        tokens = [t.strip() for t in spec.split(";") if t.strip()]
        if not tokens:
            raise FaultError("empty fault plan spec")
        for token in tokens:
            if token.startswith("seed="):
                try:
                    seed = int(token[5:])
                except ValueError:
                    raise FaultError(f"bad seed in {token!r}")
                continue
            rules.append(FaultRule.parse(token))
        return cls(rules, seed=seed)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Rewind all trigger state (counters + RNG streams)."""
        with self._lock:
            self._states = [
                _RuleState(random.Random(f"{self._seed}|{index}|{rule.site}"))
                for index, rule in enumerate(self._rules)
            ]

    # -- the decision hot path -------------------------------------------------

    def decide(self, site: str) -> Optional[Fault]:
        """Should a fault fire at ``site`` for this check?

        Counts the check against every rule matching the site (exact
        match, or a rule site ending in ``*`` as a prefix wildcard) and
        returns the first rule whose trigger fires, as a :class:`Fault`.
        """
        with self._lock:
            fired: Optional[Fault] = None
            for rule, state in zip(self._rules, self._states):
                if not _site_matches(rule.site, site):
                    continue
                state.checks += 1
                if fired is not None:
                    continue  # still count checks on later rules
                if rule.once and state.fires:
                    continue
                if rule.nth is not None:
                    if state.checks != rule.nth:
                        continue
                elif rule.probability < 1.0 and state.rng.random() >= rule.probability:
                    continue
                state.fires += 1
                fired = Fault(site, rule)
            return fired

    # -- books ----------------------------------------------------------------

    def stats(self) -> List[Dict[str, object]]:
        """Per-rule check/fire counts, rule order."""
        with self._lock:
            return [
                {
                    "rule": rule.spec(),
                    "site": rule.site,
                    "effect": rule.effect,
                    "checks": state.checks,
                    "fires": state.fires,
                }
                for rule, state in zip(self._rules, self._states)
            ]

    def fires(self) -> int:
        """Total rule firings so far."""
        with self._lock:
            return sum(state.fires for state in self._states)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"FaultPlan({self.spec()!r}, fires={self.fires()})"


def _site_matches(pattern: str, site: str) -> bool:
    if pattern.endswith("*"):
        return site.startswith(pattern[:-1])
    return pattern == site


__all__ = [
    "DEFAULT_LATENCY_MS",
    "DEFAULT_STALL_MS",
    "EFFECTS",
    "Fault",
    "FaultError",
    "FaultPlan",
    "FaultRule",
]
