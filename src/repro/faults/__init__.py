"""Deterministic fault injection and recovery policies (docs/ROBUSTNESS.md).

The plane has three layers, all zero-dependency:

* :mod:`.plan` — :class:`FaultPlan`: named injection sites with
  probability / nth-call / once triggers, fully reproducible from an
  int seed and serializable to a one-line spec for failure repro lines;
* :mod:`.inject` — :func:`fault_scope` (context-var scoped arming) and
  :func:`check_site` hooks threaded through the store, cluster, and ops
  layers; compiled down to a single module-flag test when nothing is
  armed, so the always-on hot path stays within the PR 8 overhead
  budget (benchmarked by ``benchmarks/bench_e17_faults.py``);
* :mod:`.policies` — composable :class:`RetryPolicy` (exponential
  backoff with decorrelated jitter), :class:`Deadline`, and a per-shard
  :class:`CircuitBreaker`.

:mod:`.chaos` drives seeded record/ask/crash-recover schedules over a
durable session and checks — via
:func:`repro.incomplete.certainty.incomplete_equivalent`, Theorem 3.5 —
that every recovery lands on knowledge equivalent to a fault-free run.
"""

from .inject import FaultInjected, armed, check_site, fault_scope, active_plan
from .plan import EFFECTS, FaultError, FaultPlan, FaultRule
from .policies import (
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "EFFECTS",
    "FaultError",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "active_plan",
    "armed",
    "check_site",
    "fault_scope",
]
