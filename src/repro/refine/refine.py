"""Algorithm Refine (Theorem 3.4) and the refinement pipeline.

``refine(T, q, A, alphabet)`` computes an unambiguous incomplete tree
T' with ``rep(T') = rep(T) ∩ q⁻¹(A)`` — one PTIME step of knowledge
acquisition.  ``refine_sequence`` folds a whole query/answer history,
starting from the universal incomplete tree, and optionally finishes by
intersecting with the known source tree type (Theorem 3.5).

Each step composes Lemma 3.2 (:func:`~repro.refine.inverse.inverse_incomplete`)
with Lemma 3.3 (:func:`~repro.refine.intersect.intersect`).  The result
of a step is normalized (dead symbols pruned) by default; the
exponential growth of Example 3.2 survives normalization — all 2^n
specializations there are realizable — which is exactly the blowup
experiment E6 measures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF
from .intersect import intersect
from .inverse import inverse_incomplete, universal_incomplete
from .type_intersect import intersect_with_tree_type

#: One step of acquisition history.
QueryAnswer = Tuple[PSQuery, DataTree]


def refine(
    current: IncompleteTree,
    query: PSQuery,
    answer: DataTree,
    alphabet: Iterable[str],
    normalize: bool = True,
) -> IncompleteTree:
    """One Refine step: ``rep(result) = rep(current) ∩ q⁻¹(A)``."""
    cache = _PERF.caches["refine"] if _PERF.enabled else None
    if cache is not None:
        memo_key = (
            current.cache_key(),
            query,
            answer,
            tuple(alphabet),
            normalize,
        )
        cached = cache.get(memo_key)
        if cached is not _MISS:
            return cached
        alphabet = memo_key[3]  # the iterable was consumed into the key
    with _span("refine.step") as sp:
        with _span("refine.inverse") as sp_inv:
            inverse = inverse_incomplete(query, answer, alphabet)
            if sp_inv is not None:
                sp_inv.attrs["inverse_size"] = inverse.size()
        with _span("refine.intersect"):
            result = intersect(current, inverse)
        if normalize:
            with _span("refine.normalize") as sp_norm:
                final = result.normalized()
                if sp_norm is not None:
                    sp_norm.attrs["pruned_symbols"] = len(result.type.symbols()) - len(
                        final.type.symbols()
                    )
        else:
            final = result
        if _OBS.enabled:
            specializations = len(result.type.symbols())
            size = final.size()
            metrics = _OBS.metrics
            metrics.inc("refine.steps")
            metrics.inc("refine.specializations", specializations)
            metrics.observe("refine.result_size", size)
            if sp is not None:
                sp.attrs.update(
                    input_size=current.size(),
                    answer_nodes=len(answer),
                    query_nodes=query.size(),
                    specializations=specializations,
                    result_size=size,
                )
        if cache is not None:
            cache.put(memo_key, final)
        return final


def refine_sequence(
    alphabet: Iterable[str],
    history: Sequence[QueryAnswer],
    tree_type: Optional[TreeType] = None,
    normalize: bool = True,
) -> IncompleteTree:
    """Fold a query/answer history into one incomplete tree.

    Starts from the universal incomplete tree over ``alphabet`` and
    applies Refine per pair; when ``tree_type`` is given, finishes with
    the Theorem 3.5 intersection.
    """
    labels = sorted(set(alphabet))
    with _span("refine.sequence", steps=len(history)) as sp:
        current = universal_incomplete(labels)
        for query, answer in history:
            current = refine(current, query, answer, labels, normalize=normalize)
            if _OBS.enabled:
                _OBS.metrics.observe("refine.knowledge_size", current.size())
        if tree_type is not None:
            with _span("refine.type_intersect"):
                current = intersect_with_tree_type(current, tree_type)
        if _OBS.enabled and sp is not None:
            sp.attrs["final_size"] = current.size()
        return current


def consistent_with(
    tree: DataTree,
    history: Sequence[QueryAnswer],
    tree_type: Optional[TreeType] = None,
) -> bool:
    """Ground truth for testing: does ``tree`` satisfy the type and
    reproduce every recorded answer?"""
    if tree_type is not None and not tree_type.satisfied_by(tree):
        return False
    return all(query.evaluate(tree) == answer for query, answer in history)
