"""Conjunctive incomplete trees and Algorithm Refine⁺ (Section 3.2).

The paper avoids the exponential blowup of Algorithm Refine by allowing
*conjunctions* of disjunctions of multiplicity atoms — in automata
terms, alternation instead of plain nondeterminism.  We realize the
same object as a *layered* representation: a conjunctive incomplete
tree is a sequence of ordinary (unambiguous) incomplete trees sharing
their data nodes, denoting the intersection of their rep sets.

The two presentations are equivalent: a layer contributes one conjunct
to every rule of a (virtual) product symbol, and the paper's guess-π
emptiness algorithm (Theorem 3.10) corresponds to materializing one
layer-combination at a time.  The layered form directly gives the
Theorem 3.8 / Corollary 3.9 size bound: Refine⁺ appends the Lemma 3.2
inverse as a new layer, so after n steps the size is
O(Σᵢ (|Aᵢ| + |qᵢ|)·|Σ|) — linear in the history.

The price (Theorem 3.10): deciding emptiness requires materializing the
product, which is worst-case exponential in the number of layers;
:meth:`ConjunctiveIncompleteTree.is_empty` folds the layers with
normalization after every step (pruning keeps easy instances easy, but
SAT-derived families — experiment E8 — remain exponential, as they must
unless P = NP).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..core.values import values_equal
from ..incomplete.incomplete_tree import DataNode, IncompleteTree
from .intersect import compatible, intersect
from .inverse import inverse_incomplete, universal_incomplete
from .type_intersect import intersect_with_tree_type


class ConjunctiveIncompleteTree:
    """A conjunction (intersection) of incomplete trees.

    The known source tree type, when present, is held separately and
    applied *after* the layer product (Theorem 3.5's rewriting needs the
    unambiguous form the layers have; see ``refine.type_intersect``).
    """

    __slots__ = ("_layers", "_tree_type")

    def __init__(
        self,
        layers: Sequence[IncompleteTree],
        tree_type: Optional[TreeType] = None,
    ):
        if not layers:
            raise ValueError("a conjunctive incomplete tree needs >= 1 layer")
        self._layers: Tuple[IncompleteTree, ...] = tuple(layers)
        self._tree_type = tree_type
        for i, left in enumerate(self._layers):
            for right in self._layers[i + 1 :]:
                if not compatible(left, right):
                    raise ValueError("layers disagree on shared data nodes")

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def universal(alphabet: Iterable[str]) -> "ConjunctiveIncompleteTree":
        return ConjunctiveIncompleteTree([universal_incomplete(alphabet)])

    # -- accessors -----------------------------------------------------------------

    @property
    def layers(self) -> Tuple[IncompleteTree, ...]:
        return self._layers

    @property
    def tree_type(self) -> Optional[TreeType]:
        return self._tree_type

    def size(self) -> int:
        """Corollary 3.9's measured quantity: total layer size."""
        total = sum(layer.size() for layer in self._layers)
        if self._tree_type is not None:
            total += len(self._tree_type.alphabet)
        return total

    def data_nodes(self) -> Dict[str, DataNode]:
        merged: Dict[str, DataNode] = {}
        for layer in self._layers:
            merged.update(layer.data_nodes())
        return merged

    @property
    def allows_empty(self) -> bool:
        return all(layer.allows_empty for layer in self._layers)

    # -- semantics --------------------------------------------------------------------

    def contains(self, tree: DataTree) -> bool:
        """Membership stays PTIME: check every layer plus the type."""
        if self._tree_type is not None:
            if tree.is_empty() or not self._tree_type.satisfied_by(tree):
                return False
        return all(layer.contains(tree) for layer in self._layers)

    def refine_plus(
        self, query: PSQuery, answer: DataTree, alphabet: Iterable[str]
    ) -> "ConjunctiveIncompleteTree":
        """Algorithm Refine⁺ (Theorem 3.8): append the q⁻¹(A) layer.

        O((|A| + |q|)·|Σ|) added size, O(1) additional work beyond the
        Lemma 3.2 construction.
        """
        layer = inverse_incomplete(query, answer, alphabet)
        if not all(compatible(layer, existing) for existing in self._layers):
            # inconsistent answer: the represented set is empty
            return ConjunctiveIncompleteTree(
                list(self._layers) + [IncompleteTree.nothing(allows_empty=False)],
                self._tree_type,
            )
        return ConjunctiveIncompleteTree(
            list(self._layers) + [layer], self._tree_type
        )

    def with_tree_type(self, tree_type: TreeType) -> "ConjunctiveIncompleteTree":
        """Record the source type (applied last, per Theorem 3.5)."""
        return ConjunctiveIncompleteTree(self._layers, tree_type)

    def to_incomplete_tree(self, normalize: bool = True) -> IncompleteTree:
        """Materialize the product — the (possibly exponential) plain
        incomplete tree with the same rep set."""
        current = self._layers[0]
        for layer in self._layers[1:]:
            current = intersect(current, layer)
            if normalize:
                current = current.normalized()
        if self._tree_type is not None:
            current = intersect_with_tree_type(current, self._tree_type)
        return current

    def is_empty(self) -> bool:
        """Emptiness (Theorem 3.10: NP-complete).

        Folds the layers (smallest first) into a product, normalizing and
        minimizing after every intersection, and stops early once the
        product is provably empty.  The heuristics keep benign instances
        fast; SAT-derived families (experiment E8) remain exponential,
        as they must unless P = NP.
        """
        from .minimize import merge_equivalent_symbols
        from .type_intersect import structural_weakening

        layers = list(self._layers)
        if self._tree_type is not None:
            # sound early pruning: the type's unambiguous structural
            # over-approximation joins the product up front; the exact
            # (counting) constraints are still applied at the end
            layers.append(structural_weakening(self._tree_type))
        ordered = sorted(layers, key=lambda layer: layer.size())
        current = ordered[0]
        for layer in ordered[1:]:
            current = merge_equivalent_symbols(
                intersect(current, layer).normalized()
            )
            if current.is_empty():
                return True
        if self._tree_type is not None:
            current = intersect_with_tree_type(current, self._tree_type)
        return current.is_empty()

    def __len__(self) -> int:
        return len(self._layers)

    def __repr__(self) -> str:
        return (
            f"ConjunctiveIncompleteTree({len(self._layers)} layers, "
            f"size={self.size()})"
        )


def refine_plus_sequence(
    alphabet: Iterable[str],
    history: Sequence[Tuple[PSQuery, DataTree]],
    tree_type: Optional[TreeType] = None,
) -> ConjunctiveIncompleteTree:
    """Fold a query/answer history with Refine⁺ (size linear in history)."""
    labels = sorted(set(alphabet))
    if tree_type is not None:
        labels = sorted(set(labels) | set(tree_type.alphabet))
    current = ConjunctiveIncompleteTree.universal(labels)
    for query, answer in history:
        current = current.refine_plus(query, answer, labels)
    if tree_type is not None:
        current = current.with_tree_type(tree_type)
    return current
