"""Knowledge acquisition: Algorithm Refine and its building blocks
(Lemmas 3.2/3.3, Theorems 3.4/3.5), plus the blowup countermeasures of
Section 3.2 (conjunctive trees, linear queries, heuristics)."""

from .conjunctive import ConjunctiveIncompleteTree, refine_plus_sequence
from .heuristics import forget_specializations, probing_queries
from .intersect import compatible, intersect, pair_symbol
from .inverse import answer_witness, inverse_incomplete, universal_incomplete
from .linear import is_linear, refine_linear_sequence
from .minimize import merge_equivalent_symbols
from .refine import QueryAnswer, consistent_with, refine, refine_sequence
from .type_intersect import intersect_with_tree_type

__all__ = [
    "ConjunctiveIncompleteTree",
    "forget_specializations",
    "is_linear",
    "merge_equivalent_symbols",
    "probing_queries",
    "refine_linear_sequence",
    "refine_plus_sequence",
    "QueryAnswer",
    "answer_witness",
    "compatible",
    "consistent_with",
    "intersect",
    "intersect_with_tree_type",
    "inverse_incomplete",
    "pair_symbol",
    "refine",
    "refine_sequence",
    "universal_incomplete",
]
