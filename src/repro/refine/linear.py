"""Linear ps-queries (Lemma 3.12).

A ps-query is *linear* when its pattern is a single path.  The paper
shows the Refine representation then stays polynomial in the history:
the Lemma 3.2 inverse of a linear query contains no disjunction (the
τ̂ rule has a single branch), and the per-depth conditions partition Q
into linearly many intervals whose cells share downstream behaviour.

``refine_linear_sequence`` realizes this as plain Refine followed by
symbol minimization (:func:`~repro.refine.minimize.merge_equivalent_symbols`):
interval cells with equal behaviour collapse into one specialization
with the disjoined condition — the τ_u^d types of the paper's proof.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..incomplete.incomplete_tree import IncompleteTree
from .minimize import merge_equivalent_symbols
from .refine import refine
from .inverse import universal_incomplete
from .type_intersect import intersect_with_tree_type


def is_linear(query: PSQuery) -> bool:
    """Single-path pattern test."""
    return query.is_linear()


def refine_linear_sequence(
    alphabet: Iterable[str],
    history: Sequence[Tuple[PSQuery, DataTree]],
    tree_type: Optional[TreeType] = None,
) -> IncompleteTree:
    """Refine a history of *linear* queries, minimizing after each step.

    Raises ``ValueError`` when a query is not linear — callers choosing
    this fast path promise the Lemma 3.12 precondition.
    """
    labels = sorted(set(alphabet))
    current = universal_incomplete(labels)
    for query, answer in history:
        if not query.is_linear():
            raise ValueError(
                f"refine_linear_sequence needs linear queries; {query!r} branches"
            )
        current = refine(current, query, answer, labels)
        current = merge_equivalent_symbols(current)
    if tree_type is not None:
        current = merge_equivalent_symbols(
            intersect_with_tree_type(current, tree_type)
        )
    return current
