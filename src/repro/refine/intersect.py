"""Intersection of unambiguous incomplete trees (Lemma 3.3).

``intersect(T1, T2)`` builds an unambiguous incomplete tree T with
``rep(T) = rep(T1) ∩ rep(T2)`` as a product construction, in time
polynomial in |T1|·|T2|.  The two inputs must be *compatible* (shared
data nodes agree on label and value) — otherwise the intersection is
empty and an empty representation is returned.

The construction mirrors tree-automata product: result symbols are
compatible pairs of input symbols; the disjuncts of a pair's rule
combine one disjunct from each side via the unique matching ρ between
their entries.  Unambiguity (Definition 3.1) of the inputs is what makes
ρ unique: every node of a represented tree has exactly one typing per
side, so pairing entries loses no correlations.

Only symbols reachable from the root pairs are generated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.values import values_equal
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import DataNode, IncompleteTree
from ..perf.state import STATE as _PERF

_MISS = object()  # memo sentinel

#: Separator for pair-symbol names (kept readable for debugging).
_SEP = "⋈"


def pair_symbol(left: str, right: str) -> str:
    return f"{left}{_SEP}{right}"


def compatible(left: IncompleteTree, right: IncompleteTree) -> bool:
    """Do the two trees agree on shared data nodes (paper's notion)?"""
    shared = left.data_node_ids() & right.data_node_ids()
    for node_id in shared:
        if left.data_label(node_id) != right.data_label(node_id):
            return False
        if not values_equal(left.data_value(node_id), right.data_value(node_id)):
            return False
    return True


def intersect(left: IncompleteTree, right: IncompleteTree) -> IncompleteTree:
    """rep-intersection of two unambiguous incomplete trees.

    Raises ``ValueError`` when an input violates Definition 3.1's
    multiplicity discipline (data-node entries 1, others *): the pairing
    ρ is only exact under it.  Intersect with the source *tree type*
    last, via :func:`~repro.refine.type_intersect.intersect_with_tree_type`,
    which performs the required disjunct expansion.
    """
    _check_unambiguous_multiplicities(left, "left")
    _check_unambiguous_multiplicities(right, "right")
    if not compatible(left, right):
        return IncompleteTree.nothing(allows_empty=False)
    builder = _Product(left, right)
    return builder.run()


def _check_unambiguous_multiplicities(tree: IncompleteTree, side: str) -> None:
    tau = tree.type
    node_ids = tree.data_node_ids()
    for symbol in tau.symbols():
        for atom in tau.mu(symbol):
            for entry, mult in atom.items():
                is_node = tau.sigma(entry) in node_ids
                if is_node and mult is not Mult.ONE:
                    raise ValueError(
                        f"intersect: {side} operand has data-node entry "
                        f"{entry!r} with multiplicity {mult.value!r} (need 1)"
                    )
                if not is_node and mult is not Mult.STAR:
                    raise ValueError(
                        f"intersect: {side} operand has entry {entry!r} with "
                        f"multiplicity {mult.value!r} (need *); intersect with "
                        "tree types via intersect_with_tree_type, last"
                    )


class _Product:
    def __init__(self, left: IncompleteTree, right: IncompleteTree):
        self._left = left
        self._right = right
        self._ltype = left.type
        self._rtype = right.type
        self._lnodes = left.data_node_ids()
        self._rnodes = right.data_node_ids()
        # result accumulators
        self._sigma: Dict[str, str] = {}
        self._cond: Dict[str, object] = {}
        self._mu: Dict[str, Disjunction] = {}
        self._pending: List[Tuple[str, str]] = []
        self._names: Dict[Tuple[str, str], str] = {}
        self._taken: Set[str] = set()
        self._target_memo: Dict[Tuple[str, str], Optional[str]] = {}
        # effective element label per symbol, to prune candidate pairs
        self._llabel = {
            s: left.data_label(t) if (t := self._ltype.sigma(s)) in self._lnodes else t
            for s in self._ltype.symbols()
        }
        self._rlabel = {
            s: right.data_label(t) if (t := self._rtype.sigma(s)) in self._rnodes else t
            for s in self._rtype.symbols()
        }

    # -- pair compatibility (the three cases of the paper) ---------------------

    def _pair_target(self, s1: str, s2: str) -> Optional[str]:
        """The σ-target of a compatible pair, or None when incompatible
        (memoized; this is the product's innermost operation)."""
        key = (s1, s2)
        cached = self._target_memo.get(key, _MISS)
        if cached is not _MISS:
            return cached
        result = self._pair_target_uncached(s1, s2)
        self._target_memo[key] = result
        return result

    def _pair_target_uncached(self, s1: str, s2: str) -> Optional[str]:
        t1, t2 = self._ltype.sigma(s1), self._rtype.sigma(s2)
        n1, n2 = t1 in self._lnodes, t2 in self._rnodes
        if n1 and n2:
            return t1 if t1 == t2 else None
        if n1:
            if t1 in self._rnodes:
                return None  # right knows this node but types it otherwise
            if t2 != self._left.data_label(t1):
                return None
            if not self._rtype.cond(s2).accepts(self._left.data_value(t1)):
                return None
            return t1
        if n2:
            if t2 in self._lnodes:
                return None
            if t1 != self._right.data_label(t2):
                return None
            if not self._ltype.cond(s1).accepts(self._right.data_value(t2)):
                return None
            return t2
        return t1 if t1 == t2 else None

    def _enqueue(self, s1: str, s2: str) -> str:
        key = (s1, s2)
        if key not in self._names:
            name = pair_symbol(s1, s2)
            bump = 0
            while name in self._taken:  # same rendered name from another pair
                bump += 1
                name = pair_symbol(s1, s2) + f"#{bump}"
            self._names[key] = name
            self._taken.add(name)
            self._pending.append(key)
        return self._names[key]

    # -- disjunct combination ------------------------------------------------------

    def _combine_atoms(self, a1: Atom, a2: Atom) -> Optional[Atom]:
        """The paper's α1 ⋈ α2, or None when the matching fails."""
        rho: List[Tuple[str, str, Mult]] = []
        covered1: Set[str] = set()
        covered2: Set[str] = set()
        by_label: Dict[str, List[Tuple[str, Mult]]] = {}
        for e2, m2 in a2.items():
            by_label.setdefault(self._rlabel[e2], []).append((e2, m2))
        for e1, m1 in a1.items():
            for e2, m2 in by_label.get(self._llabel[e1], ()):
                if self._pair_target(e1, e2) is None:
                    continue
                met = m1.meet(m2)
                if met is None:
                    continue
                rho.append((e1, e2, met))
                covered1.add(e1)
                covered2.add(e2)
        for e1, m1 in a1.items():
            if m1.required and e1 not in covered1:
                return None
        for e2, m2 in a2.items():
            if m2.required and e2 not in covered2:
                return None
        entries = [
            (self._enqueue(e1, e2), met) for e1, e2, met in rho
        ]
        atom = Atom(entries)
        # product atoms repeat heavily across pair rules; share them
        return _PERF.pool.atom(atom) if _PERF.enabled else atom

    # -- main loop ------------------------------------------------------------------

    def run(self) -> IncompleteTree:
        roots: List[str] = []
        for r1 in sorted(self._ltype.roots):
            for r2 in sorted(self._rtype.roots):
                if self._pair_target(r1, r2) is not None:
                    roots.append(self._enqueue(r1, r2))

        while self._pending:
            s1, s2 = self._pending.pop()
            name = self._names[(s1, s2)]
            target = self._pair_target(s1, s2)
            assert target is not None
            self._sigma[name] = target
            combined_cond = self._ltype.cond(s1) & self._rtype.cond(s2)
            if _PERF.enabled:
                combined_cond = _PERF.pool.cond(combined_cond)
            self._cond[name] = combined_cond
            atoms = []
            for a1 in self._ltype.mu(s1):
                for a2 in self._rtype.mu(s2):
                    combined = self._combine_atoms(a1, a2)
                    if combined is not None:
                        atoms.append(combined)
            self._mu[name] = Disjunction(atoms)

        nodes: Dict[str, DataNode] = {}
        nodes.update(self._left.data_nodes())
        nodes.update(self._right.data_nodes())
        tau = ConditionalTreeType(roots, self._mu, self._cond, self._sigma)  # type: ignore[arg-type]
        allows_empty = self._left.allows_empty and self._right.allows_empty
        return IncompleteTree(nodes, tau, allows_empty=allows_empty)
