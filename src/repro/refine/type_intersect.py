"""Intersection with the source tree type (Theorem 3.5).

``intersect_with_tree_type(T, ρ)`` produces an incomplete tree T' with
``rep(T') = rep(T) ∩ rep(ρ)`` by rewriting T's disjuncts so that, for
every symbol, the combined children conform to the tree type's
multiplicity atom for the symbol's effective element label.

The paper's rewriting assumes at most one ``*`` specialization per
label (its unambiguity condition (3)).  The constructions in this
library can produce several mutually exclusive ``*`` specializations of
the same label with no anchoring data node (e.g. the viol/fail pair of
Lemma 3.2), in which case a required multiplicity on that label cannot
be pushed onto a single entry.  We handle it exactly by *disjunct
expansion*: "at least/exactly one b overall" becomes a disjunction over
which specialization carries the forced occurrence.  The expansion is
linear in the number of same-label entries per atom.

The output is generally *not* unambiguous (multiplicities + and ? may
appear); the paper applies this step once, after refinement, and so do
we.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, List, Optional, Tuple

from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.treetype import TreeType
from ..incomplete.incomplete_tree import IncompleteTree
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF


def structural_weakening(tree_type: TreeType) -> IncompleteTree:
    """An *unambiguous* over-approximation of a tree type.

    Keeps the parent/child label structure and the root set but drops
    all counting (every multiplicity becomes ``*``), so the result obeys
    Definition 3.1 and can participate in Lemma 3.3 products.  Useful as
    an early pruning layer: rep(weakening) ⊇ rep(type), and most
    type violations are structural.
    """
    from ..incomplete.conditional import ConditionalTreeType

    def name(label: str) -> str:
        return f"struct:{label}"

    mu = {}
    sigma = {}
    for label in tree_type.alphabet:
        entries = [(name(child), Mult.STAR) for child in tree_type.atom(label).symbols]
        mu[name(label)] = Disjunction.single(Atom(entries))
        sigma[name(label)] = label
    tau = ConditionalTreeType(
        [name(r) for r in tree_type.roots], mu, {}, sigma
    )
    return IncompleteTree({}, tau, allows_empty=False)


def intersect_with_tree_type(
    incomplete: IncompleteTree, tree_type: TreeType
) -> IncompleteTree:
    """Theorem 3.5: constrain an incomplete tree by a source tree type."""
    cache = _PERF.caches["type_intersect"] if _PERF.enabled else None
    if cache is not None:
        memo_key = (incomplete.cache_key(), tree_type)
        cached = cache.get(memo_key)
        if cached is not _MISS:
            return cached
    tau = incomplete.type
    node_ids = incomplete.data_node_ids()

    def eff_label(symbol: str) -> str:
        target = tau.sigma(symbol)
        if target in node_ids:
            return incomplete.data_label(target)
        return target

    valid = {s for s in tau.symbols() if eff_label(s) in tree_type.alphabet}

    mu: Dict[str, Disjunction] = {}
    for symbol in valid:
        rho_atom = tree_type.atom(eff_label(symbol))
        atoms: List[Atom] = []
        for alpha in tau.mu(symbol):
            atoms.extend(_conform(alpha, rho_atom, valid, eff_label))
        mu[symbol] = Disjunction(atoms)

    roots = [
        s
        for s in tau.roots
        if s in valid and eff_label(s) in tree_type.roots
    ]
    cond = {s: tau.cond(s) for s in valid}
    sigma = {s: tau.sigma(s) for s in valid}
    from ..incomplete.conditional import ConditionalTreeType

    new_type = ConditionalTreeType(roots, mu, cond, sigma)
    result = IncompleteTree(
        incomplete.data_nodes(), new_type, allows_empty=False
    ).normalized()
    if cache is not None:
        cache.put(memo_key, result)
    return result


def _conform(alpha: Atom, rho_atom: Atom, valid, eff_label) -> List[Atom]:
    """All atoms replacing ``alpha`` so children conform to ``rho_atom``.

    Returns [] when the disjunct must be eliminated.
    """
    # 1. drop entries for invalid symbols / labels the type forbids here
    entries: List[Tuple[str, Mult]] = []
    for entry, mult in alpha.items():
        if entry not in valid or rho_atom.mult(eff_label(entry)) is None:
            if mult.required:
                return []  # a guaranteed child the type forbids
            continue
        entries.append((entry, mult))

    # 2. group the surviving entries by effective label
    groups: Dict[str, List[Tuple[str, Mult]]] = {}
    for entry, mult in entries:
        groups.setdefault(eff_label(entry), []).append((entry, mult))

    # 3. per label allowed by the type, compute the variants of the group
    per_label_variants: List[List[List[Tuple[str, Mult]]]] = []
    for label, rho_mult in rho_atom.items():
        group = groups.get(label, [])
        variants = _group_variants(group, rho_mult)
        if variants is None:
            return []
        per_label_variants.append(variants)

    # 4. combine one variant per label into output atoms
    results: List[Atom] = []
    for choice in iter_product(*per_label_variants):
        combined: List[Tuple[str, Mult]] = []
        for variant in choice:
            combined.extend(variant)
        results.append(Atom(combined))
    return results


def _group_variants(
    group: List[Tuple[str, Mult]], rho_mult: Mult
) -> Optional[List[List[Tuple[str, Mult]]]]:
    """How a same-label entry group can be constrained to ``rho_mult``.

    Returns a list of variants (each a list of entries), or None when
    the whole disjunct must be eliminated.
    """
    forced = [(e, m) for e, m in group if m.required]
    optional = [(e, m) for e, m in group if not m.required]

    min_total = sum(m.min_count for _e, m in forced)
    if rho_mult.max_count is not None and min_total > rho_mult.max_count:
        return None  # too many guaranteed children of this label

    if rho_mult is Mult.STAR:
        return [group]

    if rho_mult.max_count == 1:  # ONE or OPT
        if min_total == 1:
            # the forced entry is the single allowed child (capped at one
            # occurrence); optional entries must vanish
            entry, _m = forced[0]
            return [[(entry, Mult.ONE)]]
        # min_total == 0: the single child (mandatory for ONE) must come
        # from one optional entry; the others must vanish
        target = Mult.ONE if rho_mult is Mult.ONE else Mult.OPT
        variants: List[List[Tuple[str, Mult]]] = []
        for i, (entry, _m) in enumerate(optional):
            variants.append([(entry, target)])
        if rho_mult is Mult.OPT and not optional:
            variants.append([])
        if rho_mult is Mult.ONE and not variants:
            return None  # one child required but no candidate entry
        if rho_mult is Mult.OPT and optional:
            # the all-absent case is covered by any single OPT variant
            pass
        return variants

    # rho_mult is PLUS: at least one child overall
    if min_total >= 1:
        return [group]
    if not optional:
        return None
    variants = []
    for i, (entry, _m) in enumerate(optional):
        variant = [
            (e, Mult.PLUS if j == i else m) for j, (e, m) in enumerate(optional)
        ]
        variants.append(variant)
    return variants
