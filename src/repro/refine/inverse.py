"""The inverse construction of Lemma 3.2.

Given a ps-query ``q`` and an answer ``A``, build an unambiguous
incomplete tree ``T_{q,A}`` with ``rep(T_{q,A}) = q⁻¹(A)`` — the set of
data trees ``T`` with ``q(T) = A``.

The specialized alphabet consists of four symbol families (paper
notation in parentheses):

* ``any:a`` (τ_a) — a node labeled ``a`` with no constraints,
  children ``all*``;
* ``viol:p`` (τ̄_m) — a node with the label of query node ``m`` (at path
  ``p``) violating ``cond_q(m)``, children ``all*``;
* ``fail:p`` (τ̂_m, internal ``m`` only) — a node satisfying
  ``cond_q(m)`` but under which some child subquery cannot be matched;
* ``node:n`` (τ_n) — answer node ``n`` itself, whose children are: its
  answer children (exactly once each), failed candidates (``viol``/
  ``fail`` stars) for each child pattern, and arbitrary nodes with
  labels the query does not mention.

Answer nodes matched by a bar pattern, and their descendants, have all
their children known exactly (the bar extracts whole subtrees), so their
rules list exactly the answer children — the closed-world reading the
paper sketches for ā labels.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.conditions import Cond
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.query import PSQuery, Path
from ..core.tree import DataTree, NodeId
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import DataNode, IncompleteTree


def any_symbol(label: str) -> str:
    """Symbol name for τ_a."""
    return f"any:{label}"


def _viol(path: Path) -> str:
    return "viol:" + _path_key(path)


def _fail(path: Path) -> str:
    return "fail:" + _path_key(path)


def _node_symbol(node_id: NodeId) -> str:
    return f"node:{node_id}"


def _path_key(path: Path) -> str:
    return ".".join(map(str, path)) if path else "ε"


def universal_incomplete(alphabet: Iterable[str]) -> IncompleteTree:
    """The incomplete tree representing *all* trees over the alphabet
    (plus the empty tree) — the refinement sequence's starting point."""
    labels = sorted(set(alphabet))
    all_star = Atom.stars([any_symbol(a) for a in labels])
    mu = {any_symbol(a): Disjunction.single(all_star) for a in labels}
    sigma = {any_symbol(a): a for a in labels}
    tau = ConditionalTreeType(list(sigma), mu, {}, sigma)
    return IncompleteTree({}, tau, allows_empty=True)


def answer_witness(query: PSQuery, answer: DataTree) -> Dict[NodeId, Path]:
    """Map each answer node to the query pattern node it realizes.

    Descendants of bar-matched nodes map to the bar pattern's path.
    Raises ``ValueError`` when ``answer`` cannot be an answer of
    ``query`` (label mismatch, unmatched child, violated condition).
    """
    witness: Dict[NodeId, Path] = {}
    if answer.is_empty():
        return witness

    def walk(node_id: NodeId, path: Path) -> None:
        qnode = query.node_at(path)
        if answer.label(node_id) != qnode.label:
            raise ValueError(
                f"answer node {node_id!r} has label {answer.label(node_id)!r}, "
                f"query expects {qnode.label!r}"
            )
        if not qnode.cond.accepts(answer.value(node_id)):
            raise ValueError(
                f"answer node {node_id!r} violates condition {qnode.cond!r}"
            )
        witness[node_id] = path
        if qnode.extract:
            for descendant in answer.descendants(node_id):
                witness[descendant] = path
            return
        child_paths = {
            child.label: path + (i,) for i, child in enumerate(qnode.children)
        }
        for child in answer.children(node_id):
            label = answer.label(child)
            if label not in child_paths:
                raise ValueError(
                    f"answer node {child!r} (label {label!r}) does not "
                    f"correspond to any child pattern of {_path_key(path)}"
                )
            walk(child, child_paths[label])

    walk(answer.root, ())
    return witness


def inverse_incomplete(
    query: PSQuery, answer: DataTree, alphabet: Iterable[str]
) -> IncompleteTree:
    """Lemma 3.2: the unambiguous incomplete tree for ``q⁻¹(A)``.

    ``alphabet`` must contain every element label the source may use
    (the ``all*`` rules range over it).
    """
    labels = sorted(set(alphabet) | query.labels() | answer.labels())
    witness = answer_witness(query, answer)
    clashes = sorted(set(witness) & set(labels))
    if clashes:
        raise ValueError(
            f"answer node ids {clashes} coincide with element labels; node "
            "ids and labels share one namespace in incomplete trees — "
            "rename the document's node ids"
        )

    symbols: Dict[str, Tuple[str, Cond, Disjunction]] = {}
    all_star_entries = [any_symbol(a) for a in labels]
    all_star = Atom.stars(all_star_entries)

    for label in labels:
        symbols[any_symbol(label)] = (label, Cond.true(), Disjunction.single(all_star))

    # viol:p and fail:p for every query node
    for path in query.paths():
        qnode = query.node_at(path)
        symbols[_viol(path)] = (
            qnode.label,
            ~qnode.cond,
            Disjunction.single(all_star),
        )
        if qnode.children:
            atoms = []
            for i, child in enumerate(qnode.children):
                child_path = path + (i,)
                entries: List[Tuple[str, Mult]] = [(_viol(child_path), Mult.STAR)]
                if query.node_at(child_path).children:
                    entries.append((_fail(child_path), Mult.STAR))
                for a in labels:
                    if a != child.label:
                        entries.append((any_symbol(a), Mult.STAR))
                atoms.append(Atom(entries))
            symbols[_fail(path)] = (qnode.label, qnode.cond, Disjunction(atoms))

    # node:n for every answer node
    bar_region: Set[NodeId] = set()
    for node_id, path in witness.items():
        if query.node_at(path).extract:
            bar_region.add(node_id)

    for node_id, path in witness.items():
        qnode = query.node_at(path)
        cond = Cond.eq(answer.value(node_id))
        if node_id in bar_region:
            # closed world: children are exactly the answer children
            atom = Atom(
                [(_node_symbol(c), Mult.ONE) for c in answer.children(node_id)]
            )
            mu: Disjunction = Disjunction.single(atom)
        elif not qnode.children:
            mu = Disjunction.single(all_star)
        else:
            entries = [
                (_node_symbol(c), Mult.ONE) for c in answer.children(node_id)
            ]
            child_labels = set()
            for i, child in enumerate(qnode.children):
                child_path = path + (i,)
                child_labels.add(child.label)
                entries.append((_viol(child_path), Mult.STAR))
                if query.node_at(child_path).children:
                    entries.append((_fail(child_path), Mult.STAR))
            for a in labels:
                if a not in child_labels:
                    entries.append((any_symbol(a), Mult.STAR))
            mu = Disjunction.single(Atom(entries))
        symbols[_node_symbol(node_id)] = (node_id, cond, mu)

    # roots
    if answer.is_empty():
        roots = [_viol(())]
        if query.root.children:
            roots.append(_fail(()))
        roots.extend(any_symbol(a) for a in labels if a != query.root.label)
        allows_empty = True
    else:
        roots = [_node_symbol(answer.root)]
        allows_empty = False

    tau = ConditionalTreeType(
        roots,
        {name: mu for name, (_t, _c, mu) in symbols.items()},
        {name: cond for name, (_t, cond, _m) in symbols.items()},
        {name: target for name, (target, _c, _m) in symbols.items()},
    )
    nodes = {
        node_id: DataNode(answer.label(node_id), answer.value(node_id))
        for node_id in witness
    }
    return IncompleteTree(nodes, tau, allows_empty=allows_empty)
