"""Heuristics for oversized incomplete trees (Section 3.2).

Two remedies the paper sketches when the representation grows too large
regardless of the complexity-theoretic countermeasures:

1. **Probing** (Proposition 3.13, Example 3.3): ask a standard set of
   auxiliary queries — for every node ``m`` of every asked query, the
   root-to-``m`` label path with all conditions set to true, parents
   before children.  The answers pin down the data values that Refine
   would otherwise case-split on (the τ̄ types get condition ``¬true =
   false`` and vanish), keeping the incomplete tree polynomial in the
   extended history.

2. **Forgetting** (graceful loss): replace groups of specializations of
   a label by a single coarser specialization whose condition/rule is
   the union of the group's.  The represented set can only grow (we
   trade accuracy for size); in the limit this reverts to the bare
   source type, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.conditions import Cond
from ..core.multiplicity import Atom, Disjunction, Mult
from ..core.query import PSQuery, QueryNode, pattern
from ..core.tree import DataTree
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import IncompleteTree


def probing_queries(queries: Iterable[PSQuery]) -> List[PSQuery]:
    """Proposition 3.13's auxiliary queries.

    For each node ``m`` of each query: the root-to-``m`` path with true
    conditions.  Returned parents-before-children with duplicates
    removed; |result| ≤ Σ|qᵢ| and each auxiliary query is no larger than
    the query it comes from (conditions (i) and (ii) of the
    proposition).
    """
    seen: Set[Tuple[str, ...]] = set()
    result: List[PSQuery] = []
    for query in queries:
        for path in query.paths():
            labels = tuple(
                query.node_at(path[:depth]).label for depth in range(len(path) + 1)
            )
            if labels in seen:
                continue
            seen.add(labels)
            current: Optional[QueryNode] = None
            for label in reversed(labels):
                current = pattern(label, None, [current] if current else [])
            assert current is not None
            result.append(PSQuery(current))
    result.sort(key=lambda q: q.size())
    return result


def forget_specializations(
    incomplete: IncompleteTree, labels: Optional[Iterable[str]] = None
) -> IncompleteTree:
    """Lossily coarsen: merge all non-data specializations of each label.

    ``labels=None`` coarsens every label.  The result represents a
    superset of the original trees and has at most one missing-information
    specialization per label — size O(|Σ|²) regardless of history.
    """
    tau = incomplete.type
    node_ids = incomplete.data_node_ids()
    target_labels = set(labels) if labels is not None else None

    def coarse_name(label: str) -> str:
        return f"lossy:{label}"

    rename: Dict[str, str] = {}
    groups: Dict[str, List[str]] = {}
    for symbol in sorted(tau.symbols()):
        target = tau.sigma(symbol)
        if target in node_ids:
            continue
        if target_labels is not None and target not in target_labels:
            continue
        groups.setdefault(target, []).append(symbol)
        rename[symbol] = coarse_name(target)

    def rewrite_atom(atom: Atom) -> Atom:
        entries: Dict[str, Mult] = {}
        for entry, mult in atom.items():
            new = rename.get(entry, entry)
            if new in entries:
                # several specializations collapse: keep the laxest bound
                old = entries[new]
                entries[new] = Mult.STAR if Mult.STAR in (old, mult) else old
            else:
                entries[new] = mult
        return Atom(entries)

    mu: Dict[str, Disjunction] = {}
    cond: Dict[str, Cond] = {}
    sigma: Dict[str, str] = {}
    for symbol in tau.symbols():
        if symbol in rename:
            continue
        mu[symbol] = tau.mu(symbol).map_atoms(rewrite_atom)
        cond[symbol] = tau.cond(symbol)
        sigma[symbol] = tau.sigma(symbol)
    for label, members in groups.items():
        name = coarse_name(label)
        merged_cond = Cond.false()
        merged_mu = Disjunction.never()
        for member in members:
            merged_cond = merged_cond | tau.cond(member)
            merged_mu = merged_mu.union(tau.mu(member).map_atoms(rewrite_atom))
        mu[name] = merged_mu
        cond[name] = merged_cond
        sigma[name] = label

    roots = sorted({rename.get(s, s) for s in tau.roots})
    new_type = ConditionalTreeType(roots, mu, cond, sigma)
    return IncompleteTree(
        incomplete.data_nodes(), new_type, incomplete.allows_empty
    ).normalized()
