"""Symbol minimization for incomplete trees.

Merges *interchangeable* specializations: symbols with the same
specialization target and identical rules, occurring together (all or
none, as ``*`` entries) in every atom, describe the same downstream
behaviour split only by their conditions.  They can be replaced by a
single symbol whose condition is the disjunction of theirs; rep() is
preserved exactly.

This is the mechanism behind our implementation of Lemma 3.12: for
linear ps-queries the Refine product creates, per depth, one symbol per
cell of the interval partition of that depth's conditions; cells with
identical downstream behaviour collapse, keeping the representation
polynomial for the condition families the paper targets (e.g. the
viol/fail chains of repeated or nested per-level conditions).  See
EXPERIMENTS.md (E6) for measured growth, including an adversarial
family where genuinely distinct downstream behaviour forces many
symbols to survive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.multiplicity import Atom, Disjunction, Mult
from ..incomplete.conditional import ConditionalTreeType
from ..incomplete.incomplete_tree import IncompleteTree
from ..obs.spans import span as _span
from ..obs.state import STATE as _OBS
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF


def merge_equivalent_symbols(incomplete: IncompleteTree) -> IncompleteTree:
    """Fuse interchangeable specializations until a fixpoint.

    Iterating matters: once two leaf-level symbols merge, their parents'
    rules become syntactically equal and merge on the next round.
    """
    cache = _PERF.caches["minimize"] if _PERF.enabled else None
    if cache is not None:
        memo_key = incomplete.cache_key()
        cached = cache.get(memo_key)
        if cached is not _MISS:
            return cached
    with _span("refine.minimize") as sp:
        current = incomplete
        rounds = 0
        while True:
            merged = _merge_once(current)
            if merged is None:
                break
            rounds += 1
            current = merged
        if _OBS.enabled:
            merged_count = len(incomplete.type.symbols()) - len(current.type.symbols())
            _OBS.metrics.inc("refine.symbols_merged", merged_count)
            _OBS.metrics.observe("refine.minimize_rounds", rounds)
            if sp is not None:
                sp.attrs.update(rounds=rounds, symbols_merged=merged_count)
        if cache is not None:
            cache.put(memo_key, current)
        return current


def _merge_once(incomplete: IncompleteTree) -> Optional[IncompleteTree]:
    tau = incomplete.type
    node_ids = incomplete.data_node_ids()

    # candidate groups: same sigma target, same rule, same root-membership
    groups: Dict[object, List[str]] = {}
    for symbol in sorted(tau.symbols()):
        target = tau.sigma(symbol)
        if target in node_ids:
            continue  # never merge data-node symbols
        signature = (target, tau.mu(symbol), symbol in tau.roots)
        groups.setdefault(signature, []).append(symbol)
    candidates = [members for members in groups.values() if len(members) > 1]
    if not candidates:
        return None

    # keep only groups whose members co-occur (all-or-none, all star)
    def group_ok(members: List[str]) -> bool:
        member_set = set(members)
        for symbol in tau.symbols():
            for atom in tau.mu(symbol):
                present = [
                    (entry, mult)
                    for entry, mult in atom.items()
                    if entry in member_set
                ]
                if not present:
                    continue
                if len(present) != len(member_set):
                    return False
                if any(mult is not Mult.STAR for _e, mult in present):
                    return False
        return True

    mergeable = [members for members in candidates if group_ok(members)]
    if not mergeable:
        return None

    rename: Dict[str, str] = {}
    merged_cond = {}
    for members in mergeable:
        keep = members[0]
        cond = tau.cond(keep)
        for other in members[1:]:
            rename[other] = keep
            cond = cond | tau.cond(other)
        merged_cond[keep] = cond

    survivors = [s for s in tau.symbols() if s not in rename]

    def rewrite_atom(atom: Atom) -> Atom:
        entries: Dict[str, Mult] = {}
        for entry, mult in atom.items():
            target = rename.get(entry, entry)
            if target not in entries:
                entries[target] = mult
            # duplicates only arise for merged star groups; one star entry
            # stands for the whole group
        return Atom(entries)

    mu = {s: tau.mu(s).map_atoms(rewrite_atom) for s in survivors}
    cond = {s: merged_cond.get(s, tau.cond(s)) for s in survivors}
    sigma = {s: tau.sigma(s) for s in survivors}
    roots = [s for s in tau.roots if s not in rename]
    new_type = ConditionalTreeType(roots, mu, cond, sigma)
    return IncompleteTree(
        incomplete.data_nodes(), new_type, incomplete.allows_empty
    )
