"""A readers-writer lock for per-shard engine access.

The cluster's locking discipline (docs/CLUSTER.md):

* **read** — local answering (``answer_with_caveats``, ``stats``,
  certain-prefix checks): any number of concurrent readers.  These
  paths never change the represented set; the only mutation they can
  trigger is the lazy ``Webhouse.knowledge`` materialization, which is
  idempotent (two racing readers compute the same value and the second
  assignment is a no-op in effect) — see :meth:`Webhouse.prepare`,
  which the cluster calls under the write lock after every mutation
  precisely so read paths normally find the cache warm.
* **write** — ``record`` / ``ask`` / remedies / session creation:
  exclusive.

Writer-preferring: a waiting writer blocks new readers, so a stream of
cheap reads cannot starve ingestion.  Not reentrant — neither the
server handlers nor the cluster nest acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Writer-preferring readers-writer lock (not reentrant)."""

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- read side --------------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side -------------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection ----------------------------------------------------------

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer

    def __repr__(self) -> str:
        return f"RWLock(readers={self._readers}, writer={self._writer})"


__all__ = ["RWLock"]
