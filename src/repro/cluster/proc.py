"""Process-backed shard workers: the cluster's multi-core data plane.

The thread backend (:mod:`repro.cluster.sharded`) parallelizes shard
work only as far as the GIL allows; this module gives each shard its
own **worker process**, so per-shard Refine/answer work runs on real
cores.  The paper makes the split safe: shards group whole sessions and
never merge knowledge (Theorem 3.5), so a shard worker is a closed
world — its engines, its durable ``SessionStore.shard(i)`` namespace,
its journals — and certain-answer unions over shards stay monotone
(Theorems 2.8/3.14) no matter where each shard evaluates.

Topology: one :class:`ProcWorkerPool` owns N workers, each spawned with
the stdlib ``multiprocessing`` **spawn** context (a fresh interpreter —
no forked locks, deterministic imports) and connected by a duplex pipe.
Every message on that pipe is a :mod:`repro.cluster.wire` frame:
length-prefixed, CRC-checked canonical JSON.  The request envelope
carries the caller's context across the hop — trace id, remaining
deadline, and the armed fault-plan spec — so ``contextvars`` state
survives where OS processes would drop it.

Worker lifecycle:

* **startup** — the worker builds its engines by resuming every
  journaled session in its shard namespace (the same Theorem 3.5
  snapshot+replay path a restart takes), then sends a hello frame;
* **serving** — requests are handled strictly in order (a worker *is*
  its shard's write lock); every response pushes back the worker's
  latency-sketch and counter **deltas** since the previous response, so
  the router merges fleet telemetry without polling;
* **death** — a killed or hung worker is detected by EOF/poll timeout;
  the pool respawns it on demand and the fresh worker revives its
  engines from the journal.  A ``record`` acknowledged by the journal
  but not by the pipe is deduplicated on retry by the worker's
  last-pair check — the PR 9 exactly-once discipline, now across
  processes.

In-memory pools (no store) lose a killed shard's sessions on respawn —
the sound degraded direction (empty sure part, ``may_have_more``), but
a real deployment should give the pool a store.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..faults.inject import (
    FaultInjected,
    armed as _faults_armed,
    check_site as _check_site,
    fault_scope,
)
from ..faults.plan import FaultError, FaultPlan
from ..faults.policies import Deadline, DeadlineExceeded
from ..obs.sketch import QuantileSketch
from ..obs.state import STATE as _OBS
from ..store.journal import JournalError
from ..store.session import StoreError
from . import wire

Json = Any

#: The keyed operation families a worker keeps latency sketches for
#: (mirrors ``sharded.SHARD_OPS``; defined here to keep the import
#: direction ``sharded -> proc`` acyclic).
WORKER_OPS = ("record", "ask", "answer")

#: op name -> the sketch family its service time is observed under.
_OP_FAMILY = {
    "record": "record",
    "ask": "ask",
    "ask_info": "ask",
    "answer": "answer",
    "answer_info": "answer",
    "answer_all": "answer",
}

#: Worker-side errors that the router may retry (after a respawn): the
#: same set the thread backend retries, surfaced remotely.
_WORKER_RETRYABLE = (FaultInjected, JournalError, StoreError, OSError)


class WorkerError(RuntimeError):
    """A worker reported a non-retryable failure for one request."""

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


class WorkerFault(WorkerError):
    """A worker reported a *retryable* failure (store/fault-plane)."""


class WorkerUnavailable(WorkerError):
    """The worker process is dead, hung, or desynchronized.

    Retryable by design: the resilience layer respawns the worker (its
    engines revive from the journal) and retries the operation.
    """

    def __init__(self, message: str):
        super().__init__("WorkerUnavailable", message)


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a spawned worker needs to rebuild its shard world.

    Plain picklable data only — the tree type travels as its
    ``store.codec`` JSON form, never as a live object.
    """

    shard: int
    alphabet: Tuple[str, ...]
    tree_type_json: Optional[Json] = None
    auto_minimize: bool = False
    store_root: Optional[str] = None
    snapshot_every: int = 32
    obs_enabled: bool = False
    caches_enabled: bool = False


# -- the worker process -------------------------------------------------------


class _WorkerHost:
    """The in-worker shard host: engines, store, books, op handlers."""

    def __init__(self, config: WorkerConfig):
        from ..mediator.webhouse import Webhouse
        from ..store.codec import treetype_from_json
        from ..store.session import SessionStore

        self.config = config
        self.shard = config.shard
        self.alphabet = sorted(set(config.alphabet))
        self.tree_type = (
            None
            if config.tree_type_json is None
            else treetype_from_json(config.tree_type_json)
        )
        self.auto_minimize = config.auto_minimize
        self.store = (
            None
            if config.store_root is None
            else SessionStore(config.store_root, snapshot_every=config.snapshot_every)
        )
        self._webhouse_cls = Webhouse
        self.engines: Dict[str, Any] = {}
        #: per-op-family service-time sketches, reset on every push-back
        self.pending_sketches: Dict[str, QuantileSketch] = {
            op: QuantileSketch() for op in WORKER_OPS
        }
        #: counter snapshot at the last push-back (deltas travel)
        self._counter_base: Dict[str, float] = {}
        #: parsed fault plans by spec, so trigger state (``nth``/``once``)
        #: persists across the requests of one worker incarnation
        self._plans: Dict[str, FaultPlan] = {}
        #: decoded documents by their canonical JSON, so repeated asks
        #: against one source do not rebuild the tree every time
        self._sources: Dict[str, Any] = {}
        self.requests_handled = 0
        self._load_persisted()

    # -- engine management ----------------------------------------------------

    def _load_persisted(self) -> None:
        """Resume every journaled session — startup and the revival path."""
        if self.store is None:
            return
        for name in self.store.list_sessions():
            engine = self._webhouse_cls.resume(self.store, name)
            engine.prepare()
            self.engines[name] = engine

    def _engine(self, key: str, create: bool) -> Optional[Any]:
        engine = self.engines.get(key)
        if engine is not None or not create:
            return engine
        engine = self._webhouse_cls(
            self.alphabet,
            tree_type=self.tree_type,
            auto_minimize=self.auto_minimize,
        )
        if self.store is not None:
            session = self.store.create(
                key,
                self.alphabet,
                tree_type=self.tree_type,
                auto_minimize=self.auto_minimize,
            )
            engine.attach(session)
        self.engines[key] = engine
        return engine

    def _source_for(self, document_json: Json):
        from ..mediator.source import InMemorySource
        from ..store.codec import canonical_dumps, tree_from_json

        cache_key = canonical_dumps(document_json)
        source = self._sources.get(cache_key)
        if source is None:
            source = InMemorySource(tree_from_json(document_json), self.tree_type)
            if len(self._sources) >= 8:
                self._sources.pop(next(iter(self._sources)))
            self._sources[cache_key] = source
        return source

    # -- op handlers -----------------------------------------------------------

    def handle(self, op: str, args: Dict[str, Json]) -> Json:
        from ..store.codec import query_from_json, tree_to_json

        if op == "ping":
            return {"pid": os.getpid()}
        if op == "sleep":  # debug/testing: simulate a hung worker
            time.sleep(float(args.get("seconds", 0.0)))
            return {"slept_s": float(args.get("seconds", 0.0))}
        if op == "stats":
            return self._stats()
        if op == "spans":
            return self._spans(int(args.get("limit", 64)))
        if op == "answer_all":
            query = query_from_json(args["query"])
            rows = [
                [key, tree_to_json(sure), more]
                for key, (sure, more) in sorted(
                    (key, engine.answer_with_caveats(query))
                    for key, engine in self.engines.items()
                )
            ]
            return {"rows": rows}
        if op in ("record", "ask", "ask_info", "answer", "answer_info"):
            return self._keyed(op, args)
        raise ValueError(f"unknown worker op {op!r}")

    def _keyed(self, op: str, args: Dict[str, Json]) -> Json:
        from ..store.codec import query_from_json, tree_from_json, tree_to_json

        key = str(args["key"])
        query = query_from_json(args["query"])
        if op == "record":
            engine = self._engine(key, create=True)
            answer = tree_from_json(args["answer"])
            history = engine.history
            if history and history[-1] == (query, answer):
                # the journal acknowledged a crashed attempt; the retry
                # is already done — exactly-once across the process hop
                return {"recorded": False, "queries_recorded": len(history)}
            engine.record(query, answer)
            engine.prepare()
            return {"recorded": True, "queries_recorded": len(engine.history)}
        if op in ("ask", "ask_info"):
            engine = self._engine(key, create=True)
            source = self._source_for(args["document"])
            answer = engine.ask(source, query)
            engine.prepare()
            result: Dict[str, Json] = {"answer": tree_to_json(answer)}
            if op == "ask_info":
                result.update(
                    shard=self.shard,
                    knowledge_size=engine.size(),
                    queries_recorded=len(engine.history),
                )
            return result
        # answer / answer_info: reads never create an engine, so probe
        # traffic cannot grow the pool (the thread backend's contract)
        engine = self._engine(key, create=False)
        if engine is None:
            sure_json: Json = None
            more = True
            size = recorded = 0
        else:
            sure, more = engine.answer_with_caveats(query)
            sure_json = tree_to_json(sure)
            size = engine.size()
            recorded = len(engine.history)
        result = {"sure": sure_json, "may_have_more": more}
        if op == "answer_info":
            result.update(
                shard=self.shard, knowledge_size=size, queries_recorded=recorded
            )
        return result

    def _stats(self) -> Json:
        return {
            "shard": self.shard,
            "sessions": len(self.engines),
            "session_keys": sorted(self.engines),
            "queries_recorded": sum(
                len(engine.history) for engine in self.engines.values()
            ),
            "knowledge_size": sum(
                engine.size() for engine in self.engines.values()
            ),
            "pid": os.getpid(),
            "requests_handled": self.requests_handled,
        }

    def _spans(self, limit: int) -> Json:
        """Recent closed spans (flattened), for trace-propagation checks."""
        rows: List[Dict[str, Json]] = []

        def walk(span) -> None:
            rows.append(
                {
                    "name": span.name,
                    "trace_id": span.attrs.get("trace_id"),
                    "shard": span.attrs.get("shard"),
                }
            )
            for child in span.children:
                walk(child)

        for trace in list(_OBS.traces)[-limit:]:
            walk(trace)
        return {"spans": rows[-limit:]}

    # -- books -----------------------------------------------------------------

    def observe(self, op: str, seconds: float) -> None:
        family = _OP_FAMILY.get(op)
        if family is not None:
            self.pending_sketches[family].observe(seconds)

    def drain_books(self) -> Dict[str, Json]:
        """The sketch/counter deltas since the last response (and reset)."""
        sketches = {
            op: sketch.to_dict()
            for op, sketch in self.pending_sketches.items()
            if sketch.count
        }
        for op in list(self.pending_sketches):
            if op in sketches:
                self.pending_sketches[op] = QuantileSketch()
        counters: Dict[str, float] = {}
        if _OBS.enabled:
            current = dict(_OBS.metrics.counters())
            for name, value in current.items():
                delta = value - self._counter_base.get(name, 0)
                if delta:
                    counters[name] = delta
            self._counter_base = current
        return {"sketches": sketches, "counters": counters}

    def plan_for(self, spec: Optional[str]) -> Optional[FaultPlan]:
        if spec is None:
            return None
        plan = self._plans.get(spec)
        if plan is None:
            try:
                plan = FaultPlan.parse(spec)
            except FaultError:
                return None  # a bad spec disarms rather than wedging the worker
            self._plans[spec] = plan
        return plan

    def close(self) -> None:
        for engine in self.engines.values():
            if engine.session is not None:
                engine.detach()
        self.engines.clear()


def _worker_entry(config: WorkerConfig, conn) -> None:
    """The spawned worker's main: serve wire frames until shutdown/EOF."""
    # the parent coordinates shutdown over the pipe; a terminal Ctrl-C
    # must not tear workers down mid-journal-write underneath it
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from .. import obs, perf
    from ..obs.spans import (
        reset_shard,
        reset_trace_id,
        set_shard,
        set_trace_id,
        span as _span,
    )

    if config.obs_enabled:
        obs.enable(obs.RingBufferSink())
    if config.caches_enabled:
        perf.enable_caches()

    host = _WorkerHost(config)
    conn.send_bytes(
        wire.encode_frame(
            wire.response_envelope(0, value={"pid": os.getpid(), "hello": True})
        )
    )
    running = True
    while running:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            break
        seq = -1
        books: Dict[str, Json] = {}
        try:
            request = wire.decode_request(wire.decode_frame(data))
            seq = request["seq"]
            op = request["op"]
            if op == "shutdown":
                running = False
                response = wire.response_envelope(seq, value={"pid": os.getpid()})
            else:
                started = time.perf_counter()
                shard_token = set_shard(config.shard)
                trace_token = set_trace_id(request.get("trace_id"))
                try:
                    deadline_s = request.get("deadline_s")
                    if deadline_s is not None and deadline_s <= 0:
                        raise DeadlineExceeded(
                            f"request deadline expired before worker "
                            f"{config.shard} started"
                        )
                    plan = host.plan_for(request.get("fault_plan"))
                    with fault_scope(plan):
                        if _faults_armed():
                            _check_site(f"cluster.worker.{config.shard}")
                        with _span(f"worker.{op}", shard=config.shard):
                            value = host.handle(op, request["args"])
                finally:
                    reset_trace_id(trace_token)
                    reset_shard(shard_token)
                host.observe(op, time.perf_counter() - started)
                host.requests_handled += 1
                books = host.drain_books()
                response = wire.response_envelope(seq, value=value, books=books)
        except BaseException as exc:  # every failure becomes a frame
            response = wire.response_envelope(
                seq,
                error={
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "retryable": isinstance(exc, _WORKER_RETRYABLE),
                },
                books=books,
            )
        try:
            conn.send_bytes(wire.encode_frame(response))
        except (BrokenPipeError, OSError):
            break
    host.close()
    conn.close()


# -- the router-side pool -----------------------------------------------------


@dataclass
class _Worker:
    """Router-side state for one shard worker."""

    config: WorkerConfig
    process: Any = None
    conn: Any = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    seq: int = 0
    pid: Optional[int] = None
    restarts: int = 0
    #: accumulated worker-side service-time sketches (delta merges)
    sketches: Dict[str, QuantileSketch] = field(
        default_factory=lambda: {op: QuantileSketch() for op in WORKER_OPS}
    )
    #: accumulated worker counter deltas
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ProcWorkerPool:
    """One spawned worker process per shard, framed by the wire codec."""

    def __init__(
        self,
        configs: List[WorkerConfig],
        *,
        request_timeout_s: float = 30.0,
        spawn_timeout_s: float = 60.0,
    ):
        import multiprocessing

        self._ctx = multiprocessing.get_context("spawn")
        self._workers = [_Worker(config) for config in configs]
        self.request_timeout_s = float(request_timeout_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self._stopping = False

    def __len__(self) -> int:
        return len(self._workers)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "ProcWorkerPool":
        """Spawn every worker (started concurrently, awaited in order)."""
        for worker in self._workers:
            with worker.lock:
                if not worker.alive:
                    self._spawn(worker)
        for worker in self._workers:
            with worker.lock:
                self._await_hello(worker)
        return self

    def _spawn(self, worker: _Worker) -> None:
        """Launch one worker process; caller holds ``worker.lock``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(worker.config, child_conn),
            name=f"repro-shard-worker-{worker.config.shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.pid = process.pid
        worker.seq = 0

    def _await_hello(self, worker: _Worker) -> None:
        """Block until the worker's hello frame; caller holds the lock."""
        if worker.conn is None:
            raise WorkerUnavailable(f"worker {worker.config.shard} never spawned")
        if not worker.conn.poll(self.spawn_timeout_s):
            self._discard(worker)
            raise WorkerUnavailable(
                f"worker {worker.config.shard} did not come up within "
                f"{self.spawn_timeout_s:g}s"
            )
        try:
            hello = wire.decode_response(wire.decode_frame(worker.conn.recv_bytes()))
        except (EOFError, OSError, wire.WireError) as exc:
            self._discard(worker)
            raise WorkerUnavailable(
                f"worker {worker.config.shard} failed during startup: {exc}"
            )
        if not hello["ok"] or not (hello["value"] or {}).get("hello"):
            self._discard(worker)
            raise WorkerUnavailable(
                f"worker {worker.config.shard} sent a malformed hello"
            )
        worker.pid = (hello["value"] or {}).get("pid", worker.pid)

    def _discard(self, worker: _Worker) -> None:
        """Tear down a dead/hung worker's process + pipe (lock held)."""
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        process, worker.process = worker.process, None
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=5)

    def ensure(self, shard: int) -> None:
        """Respawn shard's worker if it is dead — the revival path.

        The fresh worker resumes every journaled session in its shard
        namespace before serving (Theorem 3.5 snapshot+replay), so a
        respawn after a kill loses nothing that reached the journal.
        """
        worker = self._workers[shard]
        with worker.lock:
            if self._stopping or worker.alive:
                return
            self._discard(worker)
            self._spawn(worker)
            worker.restarts += 1
            self._await_hello(worker)
        if _OBS.enabled:
            _OBS.metrics.inc("cluster.worker_respawns")

    def kill(self, shard: int) -> None:
        """SIGKILL shard's worker (chaos/testing); respawn is on demand."""
        worker = self._workers[shard]
        process = worker.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    def stop(self) -> None:
        """Orderly shutdown: ask each worker to exit, then reap."""
        self._stopping = True
        for worker in self._workers:
            with worker.lock:
                if worker.alive and worker.conn is not None:
                    try:
                        worker.seq += 1
                        worker.conn.send_bytes(
                            wire.encode_frame(
                                wire.request_envelope(worker.seq, "shutdown")
                            )
                        )
                    except (BrokenPipeError, OSError):
                        pass
        for worker in self._workers:
            with worker.lock:
                process = worker.process
                if process is not None:
                    process.join(timeout=5)
                self._discard(worker)

    # -- the request path -------------------------------------------------------

    def request(
        self,
        shard: int,
        op: str,
        args: Optional[Dict[str, Json]] = None,
        *,
        trace_id: Optional[str] = None,
        deadline: Optional[Deadline] = None,
        plan: Optional[FaultPlan] = None,
    ) -> Json:
        """One request/response round trip with shard's worker.

        Serialized per worker (the pipe is ordered, not multiplexed).
        Raises :class:`WorkerUnavailable` when the worker is dead, hung
        past the timeout, or desynchronized — all retryable after
        :meth:`ensure`.  Remote errors come back typed: ``ValueError``
        and :class:`DeadlineExceeded` re-raise as themselves,
        store/fault failures as :class:`WorkerFault` (retryable),
        everything else as :class:`WorkerError`.
        """
        worker = self._workers[shard]
        timeout = self.request_timeout_s
        deadline_s: Optional[float] = None
        if deadline is not None:
            deadline_s = deadline.remaining()
            if deadline_s <= 0:
                raise DeadlineExceeded(
                    f"deadline expired before reaching worker {shard}"
                )
            timeout = min(timeout, deadline_s)
        with worker.lock:
            if not worker.alive or worker.conn is None:
                raise WorkerUnavailable(f"worker {shard} is not running")
            worker.seq += 1
            seq = worker.seq
            envelope = wire.request_envelope(
                seq,
                op,
                args,
                trace_id=trace_id,
                deadline_s=deadline_s,
                fault_plan=None if plan is None else plan.spec(),
            )
            try:
                worker.conn.send_bytes(wire.encode_frame(envelope))
            except (BrokenPipeError, OSError) as exc:
                self._discard(worker)
                raise WorkerUnavailable(f"worker {shard} pipe is broken: {exc}")
            if not worker.conn.poll(timeout):
                # a hung worker blocks its whole shard; kill it so the
                # respawn path can bring the shard back from the journal
                self._discard(worker)
                raise WorkerUnavailable(
                    f"worker {shard} did not answer within {timeout:g}s"
                )
            try:
                response = wire.decode_response(
                    wire.decode_frame(worker.conn.recv_bytes())
                )
            except (EOFError, OSError) as exc:
                self._discard(worker)
                raise WorkerUnavailable(f"worker {shard} died mid-request: {exc}")
            except wire.WireError as exc:
                self._discard(worker)
                raise WorkerUnavailable(
                    f"worker {shard} sent an undecodable frame: {exc}"
                )
            if response["seq"] != seq:
                self._discard(worker)
                raise WorkerUnavailable(
                    f"worker {shard} desynchronized "
                    f"(expected seq {seq}, got {response['seq']})"
                )
            self._fold_books(worker, response.get("books") or {})
        if response["ok"]:
            return response["value"]
        return self._raise_remote(shard, response["error"])

    def _raise_remote(self, shard: int, error: Dict[str, Json]) -> Json:
        remote_type = str(error.get("type", "Exception"))
        message = str(error.get("message", ""))
        if remote_type == "ValueError":
            raise ValueError(message)
        if remote_type == "DeadlineExceeded":
            raise DeadlineExceeded(message)
        if error.get("retryable"):
            raise WorkerFault(remote_type, f"worker {shard}: {message}")
        raise WorkerError(remote_type, f"worker {shard}: {message}")

    def _fold_books(self, worker: _Worker, books: Dict[str, Json]) -> None:
        """Merge one response's pushed-back deltas (lock held)."""
        for op, document in (books.get("sketches") or {}).items():
            if op in worker.sketches:
                worker.sketches[op].merge(QuantileSketch.from_dict(document))
        counters = books.get("counters") or {}
        if counters:
            for name, delta in counters.items():
                worker.counters[name] = worker.counters.get(name, 0) + delta
            if _OBS.enabled:
                # fleet-wide /metrics sees worker-side engine counters
                _OBS.metrics.merge_counts(counters)

    # -- books ------------------------------------------------------------------

    def worker_sketches(self) -> Dict[str, QuantileSketch]:
        """Fleet service-time sketches: per-worker books merged per op."""
        return {
            op: QuantileSketch.merged(
                [worker.sketches[op] for worker in self._workers]
            )
            for op in WORKER_OPS
        }

    def stats(self) -> List[Dict[str, Json]]:
        """Per-worker lifecycle books (no pipe traffic)."""
        return [
            {
                "shard": worker.config.shard,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "counters": dict(worker.counters),
            }
            for worker in self._workers
        ]

    def __repr__(self) -> str:
        alive = sum(1 for worker in self._workers if worker.alive)
        return f"ProcWorkerPool(workers={len(self._workers)}, alive={alive})"


__all__ = [
    "ProcWorkerPool",
    "WORKER_OPS",
    "WorkerConfig",
    "WorkerError",
    "WorkerFault",
    "WorkerUnavailable",
    "_worker_entry",
]
