"""The cluster's binary wire codec: framed, checksummed, canonical.

The process backend (:mod:`repro.cluster.proc`) moves every request and
response between the router process and its shard workers as a **frame**:

====== ======= =====================================================
offset size    field
====== ======= =====================================================
0      4       magic ``b"RPW\\x01"`` (repro wire, format 1)
4      4       payload length ``N``, big-endian uint32
8      4       CRC-32 of the payload, big-endian uint32
12     ``N``   payload: canonical JSON (UTF-8)
====== ======= =====================================================

The payload is rendered with :func:`repro.store.codec.canonical_dumps`
— the same sorted-keys/no-whitespace convention the PR 2 journal uses —
so equal documents produce byte-identical frames and a frame can be
compared, hashed, or replayed across processes deterministically.
Values inside the payload (queries, answer trees, conditions) are the
PR 2 ``store.codec`` JSON forms; the wire layer never invents a second
serialization for paper objects.

Integrity mirrors the journal's torn-tail discipline: a frame cut at
ANY byte offset, a flipped bit anywhere, trailing garbage, a bad magic,
or an oversized declared length all raise :class:`WireError` — never a
struct/JSON error and never silent misdecoding.  ``tests/test_wire.py``
pins truncation at every offset the way the PR 9 torn-journal tests do
for the WAL.

Envelopes
---------

On top of raw frames, :func:`request_envelope` / :func:`response_envelope`
define the RPC shape.  The request envelope carries the caller's
``contextvars`` state across the process hop explicitly — the bits a
fork/exec boundary would otherwise drop:

* ``trace_id`` — the ops-plane request trace id, so worker-side spans
  carry the caller's ``X-Repro-Trace-Id``;
* ``deadline_s`` — the *remaining* per-request budget in seconds (the
  worker refuses to start work on an expired deadline);
* ``fault_plan`` — the armed :class:`~repro.faults.plan.FaultPlan`
  spec, so a chaos scope around a cluster call re-arms inside the
  worker exactly like :meth:`Executor.submit` re-arms inside threads.

Responses carry the worker's pushed-back books (latency-sketch and
counter deltas) next to the value, so fleet telemetry merges without a
separate polling channel.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, BinaryIO, Dict, Optional

from ..store.codec import canonical_dumps

Json = Any

#: Frame magic: three id bytes plus a one-byte format version.
MAGIC = b"RPW\x01"

#: Big-endian header: magic, payload length, payload CRC-32.
HEADER = struct.Struct(">4sII")
HEADER_SIZE = HEADER.size

#: Refuse absurd declared lengths before allocating (a corrupt length
#: field must not look like an instruction to buffer gigabytes).
MAX_PAYLOAD = 64 * 1024 * 1024


class WireError(ValueError):
    """A wire frame or envelope cannot be decoded."""


# -- frames -------------------------------------------------------------------


def encode_frame(document: Json) -> bytes:
    """Render ``document`` as one complete frame (header + payload)."""
    try:
        payload = canonical_dumps(document).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"payload is not JSON-serializable: {exc}")
    if len(payload) > MAX_PAYLOAD:
        raise WireError(f"payload of {len(payload)} bytes exceeds {MAX_PAYLOAD}")
    return HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_frame(data: bytes) -> Json:
    """Decode exactly one frame; every corruption raises :class:`WireError`.

    ``data`` must be the complete frame — a short buffer (truncation at
    any byte), extra trailing bytes, bad magic, a length that disagrees
    with the buffer, a CRC mismatch, or undecodable JSON all fail
    loudly.
    """
    if len(data) < HEADER_SIZE:
        raise WireError(
            f"truncated frame: {len(data)} bytes < {HEADER_SIZE}-byte header"
        )
    magic, length, crc = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_PAYLOAD:
        raise WireError(f"declared payload of {length} bytes exceeds {MAX_PAYLOAD}")
    payload = data[HEADER_SIZE:]
    if len(payload) != length:
        raise WireError(
            f"frame declares {length} payload bytes, buffer holds {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise WireError("payload CRC mismatch (corrupt frame)")
    try:
        import json

        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"frame payload is not valid JSON: {exc}")


def write_frame(stream: BinaryIO, document: Json) -> int:
    """Write one frame to a binary stream; returns the bytes written."""
    frame = encode_frame(document)
    stream.write(frame)
    return len(frame)


def read_frame(stream: BinaryIO) -> Optional[Json]:
    """Read one frame from a binary stream.

    Returns ``None`` on a clean EOF (zero bytes at a frame boundary);
    raises :class:`WireError` if the stream ends mid-frame — the stream
    analogue of the journal's torn-tail detection, except a torn frame
    on a live connection is a protocol error, not a tolerated crash
    artifact.
    """
    header = stream.read(HEADER_SIZE)
    if not header:
        return None
    if len(header) < HEADER_SIZE:
        raise WireError(
            f"stream ended inside a frame header ({len(header)}/{HEADER_SIZE} bytes)"
        )
    magic, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_PAYLOAD:
        raise WireError(f"declared payload of {length} bytes exceeds {MAX_PAYLOAD}")
    payload = stream.read(length)
    if len(payload) < length:
        raise WireError(
            f"stream ended inside a frame payload ({len(payload)}/{length} bytes)"
        )
    return decode_frame(header + payload)


# -- envelopes ----------------------------------------------------------------

#: Envelope kind tags.
REQUEST = "req"
RESPONSE = "resp"


def request_envelope(
    seq: int,
    op: str,
    args: Optional[Dict[str, Json]] = None,
    *,
    trace_id: Optional[str] = None,
    deadline_s: Optional[float] = None,
    fault_plan: Optional[str] = None,
) -> Dict[str, Json]:
    """One request document: op + args + the carried context state."""
    return {
        "kind": REQUEST,
        "seq": int(seq),
        "op": str(op),
        "args": dict(args or {}),
        "trace_id": trace_id,
        "deadline_s": deadline_s,
        "fault_plan": fault_plan,
    }


def response_envelope(
    seq: int,
    *,
    value: Json = None,
    error: Optional[Dict[str, Json]] = None,
    books: Optional[Dict[str, Json]] = None,
) -> Dict[str, Json]:
    """One response document: value XOR error, plus pushed-back books."""
    if error is not None and value is not None:
        raise WireError("a response carries a value or an error, not both")
    return {
        "kind": RESPONSE,
        "seq": int(seq),
        "ok": error is None,
        "value": value,
        "error": error,
        "books": dict(books or {}),
    }


def _require(document: Json, kind: str) -> Dict[str, Json]:
    if not isinstance(document, dict):
        raise WireError(
            f"envelope must be an object, got {type(document).__name__}"
        )
    if document.get("kind") != kind:
        raise WireError(f"expected a {kind!r} envelope, got {document.get('kind')!r}")
    if not isinstance(document.get("seq"), int):
        raise WireError(f"envelope seq must be an int, got {document.get('seq')!r}")
    return document


def decode_request(document: Json) -> Dict[str, Json]:
    """Validate a decoded frame as a request envelope."""
    envelope = _require(document, REQUEST)
    if not isinstance(envelope.get("op"), str) or not envelope["op"]:
        raise WireError(f"request op must be a non-empty string: {envelope.get('op')!r}")
    if not isinstance(envelope.get("args"), dict):
        raise WireError("request args must be an object")
    return envelope


def decode_response(document: Json) -> Dict[str, Json]:
    """Validate a decoded frame as a response envelope."""
    envelope = _require(document, RESPONSE)
    if not isinstance(envelope.get("ok"), bool):
        raise WireError("response ok flag must be a bool")
    if not envelope["ok"]:
        error = envelope.get("error")
        if not isinstance(error, dict) or "type" not in error:
            raise WireError(f"error response without an error object: {error!r}")
    if not isinstance(envelope.get("books"), dict):
        raise WireError("response books must be an object")
    return envelope


__all__ = [
    "HEADER",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD",
    "REQUEST",
    "RESPONSE",
    "WireError",
    "decode_frame",
    "decode_request",
    "decode_response",
    "encode_frame",
    "read_frame",
    "request_envelope",
    "response_envelope",
    "write_frame",
]
