"""A sharded pool of webhouses with parallel scatter-gather answering.

The paper's mediator keeps one incomplete tree per interaction (§3.4):
knowledge is acquired and refined *per session*, and Theorem 3.5 makes
each session's knowledge a pure function of its own query/answer
history.  That independence is exactly what makes the warehouse
shardable: :class:`ShardedWebhouse` owns one :class:`Webhouse` per
session key, groups the sessions into ``shards`` independent lock
domains via a consistent-hash :class:`~repro.cluster.ring.Router`, and
runs fleet-wide operations on a scatter-gather
:class:`~repro.cluster.executor.Executor`.

Because routing only decides *grouping* — never what any session
knows — the certain answers are invariant under the shard count: the
same fact sequence yields identical answers on 1, 2, or 8 shards
(exercised by ``tests/test_cluster.py``).  Concretely:

* keyed operations (:meth:`record`, :meth:`ask`, :meth:`answer`) route
  the key, pass the shard's admission gate, and take the shard's
  readers-writer lock — reads share, writes exclude, and a hot shard
  sheds load (:class:`~repro.cluster.admission.ShardOverloaded`)
  instead of queueing without bound;
* fleet operations (:meth:`ask_all`, :meth:`stats_all`) scatter one
  task per shard and gather **deterministically**: per-shard results
  are merged in globally sorted session-key order, so the certain-
  answer union is reproducible regardless of thread scheduling.

:meth:`ask_all`'s union assumes the fleet observes one source document
(the Section 1 scenario: many interactions against the same catalog);
per-session sure answers then share the document root and compose with
:func:`~repro.mediator.local_query.overlay`.  Sessions over genuinely
different documents should be queried per key, not fleet-wide.

Backends
--------

``backend="thread"`` (default) keeps every shard's engines in this
process behind per-shard readers-writer locks — cheap, but all Refine
and answering work shares one GIL.  ``backend="process"`` hosts each
shard in its own worker process (:class:`~repro.cluster.proc.
ProcWorkerPool`): keyed and fleet operations become request/response
round trips framed by the :mod:`~repro.cluster.wire` binary codec, the
worker owns its durable ``SessionStore.shard(i)`` namespace, and shard
work runs on real cores.  Semantics are identical by construction —
same router, same admission gates, same :class:`ResiliencePolicy`
(retry + breakers; the "revive" step becomes a worker respawn whose
engines resume from the journal), same degraded ``ask_all`` — and the
certain-answer invariance suite runs against both backends.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..core.query import PSQuery
from ..core.tree import DataTree
from ..core.treetype import TreeType
from ..faults.inject import FaultInjected, active_plan
from ..faults.policies import CircuitBreaker, CircuitOpen, Deadline, RetryPolicy
from ..mediator.local_query import overlay
from ..mediator.source import InMemorySource
from ..mediator.webhouse import Webhouse
from ..obs.sketch import QuantileSketch
from ..obs.spans import current_trace_id, reset_shard, set_shard, span as _span
from ..obs.state import STATE as _OBS
from ..perf import caches_enabled
from ..store.codec import (
    query_to_json,
    tree_from_json,
    tree_to_json,
    treetype_to_json,
)
from ..store.journal import JournalError
from ..store.session import StoreError
from .admission import AdmissionController
from .executor import Executor
from .locks import RWLock
from .proc import (
    ProcWorkerPool,
    WorkerConfig,
    WorkerError,
    WorkerFault,
    WorkerUnavailable,
)
from .ring import DEFAULT_REPLICAS, Router

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.session import SessionStore

#: Errors worth retrying / counting against a shard's breaker: injected
#: faults and the store-layer failures they (or real disks) surface as.
#: Deliberate control decisions — admission shedding, validation — are
#: excluded: retrying them would amplify load, not absorb a glitch.
RETRYABLE_ERRORS = (FaultInjected, JournalError, StoreError, OSError)

#: The process backend adds the worker-side retryables: a dead/hung
#: worker (respawned + journal-revived before the retry) and a remote
#: store/fault failure the worker reported as retryable.
PROC_RETRYABLE_ERRORS = RETRYABLE_ERRORS + (WorkerFault, WorkerUnavailable)

#: The execution backends :class:`ShardedWebhouse` supports.
BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the cluster absorbs per-shard trouble (docs/ROBUSTNESS.md).

    * ``retry`` wraps each keyed *write* operation (``record``/``ask``):
      a transient store failure is retried after the wedged engine is
      revived from its journal, so one torn write does not surface to
      the caller.
    * ``breaker_*`` parameterize the per-shard circuit breakers: after
      ``breaker_failures`` consecutive unabsorbed failures a shard
      refuses keyed operations (:class:`CircuitOpen` → HTTP 503) for
      ``breaker_cooldown_s``, then half-opens on the next call.
    * ``ask_all_deadline_s`` bounds the fleet fan-out gather: a stalled
      shard is reported as degraded instead of wedging ``ask_all``.
    """

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(attempts=3, base_s=0.005, cap_s=0.05)
    )
    breaker_failures: int = 5
    breaker_cooldown_s: float = 5.0
    ask_all_deadline_s: Optional[float] = None


def _validate_key(key: str) -> str:
    """Session keys double as durable session names; same rules apply."""
    if not key or key != os.path.basename(key) or key.startswith("."):
        raise ValueError(f"invalid session key {key!r}")
    return key


#: The keyed operations each shard keeps a latency sketch for.
SHARD_OPS = ("record", "ask", "answer")


class Shard:
    """One lock domain: a dict of per-session engines behind an RWLock."""

    __slots__ = ("index", "lock", "engines", "sketches")

    def __init__(self, index: int):
        self.index = index
        self.lock = RWLock()
        #: session key -> its engine; guarded by :attr:`lock`.
        self.engines: Dict[str, Webhouse] = {}
        #: op name -> latency sketch (always-on; the sketches carry
        #: their own locks, so observation never touches :attr:`lock`).
        self.sketches: Dict[str, QuantileSketch] = {
            op: QuantileSketch() for op in SHARD_OPS
        }

    def __repr__(self) -> str:
        return f"Shard({self.index}, sessions={len(self.engines)})"


class ShardedWebhouse:
    """N independent webhouse shards behind a consistent-hash router."""

    def __init__(
        self,
        alphabet: Iterable[str],
        tree_type: Optional[TreeType] = None,
        shards: int = 4,
        *,
        auto_minimize: bool = False,
        replicas: int = DEFAULT_REPLICAS,
        factory: Optional[Callable[[], Webhouse]] = None,
        router: Optional[Router] = None,
        executor: Optional[Executor] = None,
        admission: Optional[AdmissionController] = None,
        store: Optional["SessionStore"] = None,
        latency_probe: Optional[Callable[[int, str, float], None]] = None,
        resilience: Optional[ResiliencePolicy] = None,
        backend: str = "thread",
        worker_timeout_s: float = 30.0,
    ):
        if router is not None and router.shards != shards:
            raise ValueError(
                f"router covers {router.shards} shards, cluster has {shards}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r} (expected {BACKENDS})")
        if backend == "process" and factory is not None:
            raise ValueError(
                "backend='process' cannot use a live factory; workers "
                "rebuild engines from (alphabet, tree_type, auto_minimize)"
            )
        self._backend = backend
        self._alphabet = sorted(set(alphabet))
        self._tree_type = tree_type
        self._auto_minimize = auto_minimize
        self._factory = factory
        self.router = router if router is not None else Router(shards, replicas=replicas)
        self._shards: List[Shard] = [Shard(index) for index in range(shards)]
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else Executor(max_workers=shards)
        self.admission = (
            admission if admission is not None else AdmissionController(shards)
        )
        self._store = store
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                f"shard-{index}",
                failure_threshold=self.resilience.breaker_failures,
                cooldown_s=self.resilience.breaker_cooldown_s,
            )
            for index in range(shards)
        ]
        #: called after every sketch observation with (shard, op,
        #: seconds) — benchmarks use it to pool the exact raw durations
        #: the shard sketches saw, for ground-truth quantile comparison.
        self.latency_probe = latency_probe
        self._substores: List[Optional["SessionStore"]] = [None] * shards
        if store is not None:
            self._substores = [store.shard(index) for index in range(shards)]
        #: decoded-source JSON memo for the process backend: id(source)
        #: -> (source, document JSON), capped small (see _document_json)
        self._doc_json: Dict[int, Tuple[object, object]] = {}
        self._pool: Optional[ProcWorkerPool] = None
        if backend == "process":
            self._pool = ProcWorkerPool(
                [
                    WorkerConfig(
                        shard=index,
                        alphabet=tuple(self._alphabet),
                        tree_type_json=(
                            None
                            if tree_type is None
                            else treetype_to_json(tree_type)
                        ),
                        auto_minimize=auto_minimize,
                        store_root=(
                            None
                            if store is None
                            else self._substores[index].root
                        ),
                        snapshot_every=(
                            store.snapshot_every if store is not None else 32
                        ),
                        obs_enabled=_OBS.enabled,
                        caches_enabled=caches_enabled(),
                    )
                    for index in range(shards)
                ],
                request_timeout_s=worker_timeout_s,
            ).start()
        elif store is not None:
            # thread backend resumes journaled sessions in-process; the
            # process backend's workers each resume their own namespace
            self._load_persisted()

    # -- construction helpers ---------------------------------------------------

    def _load_persisted(self) -> None:
        """Resume every journaled session from the per-shard namespaces."""
        for shard in self._shards:
            sub = self._substores[shard.index]
            if sub is None:
                continue
            for name in sub.list_sessions():
                engine = Webhouse.resume(sub, name)
                engine.prepare()
                shard.engines[name] = engine

    def _new_engine(self, shard: Shard, key: str) -> Webhouse:
        """Create (and, when durable, attach) the engine for ``key``.

        Caller holds the shard's write lock.
        """
        engine = (
            self._factory()
            if self._factory is not None
            else Webhouse(
                self._alphabet,
                tree_type=self._tree_type,
                auto_minimize=self._auto_minimize,
            )
        )
        sub = self._substores[shard.index]
        if sub is not None:
            session = sub.create(
                key,
                self._alphabet,
                tree_type=self._tree_type,
                auto_minimize=self._auto_minimize,
            )
            engine.attach(session)
        shard.engines[key] = engine
        if _OBS.enabled:
            _OBS.metrics.inc("cluster.sessions_created")
            _OBS.metrics.set_gauge(
                f"shard.{shard.index}.sessions", len(shard.engines)
            )
        return engine

    # -- routing ----------------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def backend(self) -> str:
        """The execution backend: ``"thread"`` or ``"process"``."""
        return self._backend

    def shard_of(self, key: str) -> int:
        """The shard index that owns ``key`` (stable across processes)."""
        return self.router.route(_validate_key(key))

    def _observe_op(self, shard: Shard, op: str, seconds: float) -> None:
        """Fold one completed keyed operation into the shard's sketch.

        Shed operations are *not* observed — a refused request has no
        service latency; admission books count it instead.
        """
        shard.sketches[op].observe(seconds)
        if self.latency_probe is not None:
            self.latency_probe(shard.index, op, seconds)

    # -- resilience -------------------------------------------------------------

    def breaker(self, index: int) -> CircuitBreaker:
        """Shard ``index``'s circuit breaker (for books and tests)."""
        return self._breakers[index]

    def _revive_engine(self, shard: Shard, key: str) -> None:
        """Drop a possibly-wedged engine and resume it from its journal.

        Caller holds the shard's *write* lock.  A store-layer failure
        mid-record can leave an engine's memory ahead of its journal
        (or its journal handle closed); the only trustworthy copy is
        disk, so the engine is rebuilt by snapshot + replay — the same
        Theorem 3.5 path a process restart takes.  In-memory clusters
        (no store) keep the engine: with no journal to disagree with,
        memory *is* the state.
        """
        sub = self._substores[shard.index]
        if sub is None or not sub.exists(key):
            return
        shard.engines.pop(key, None)
        revived = Webhouse.resume(sub, key)
        revived.prepare()
        shard.engines[key] = revived
        if _OBS.enabled:
            _OBS.metrics.inc("cluster.engine_revivals")

    def _resilient(self, shard: Shard, key: str, op: Callable[[], object]) -> object:
        """Run a keyed engine op under the shard's breaker + retry policy.

        ``op`` must look its engine up on every call — after a failed
        attempt the engine is revived from disk, and the retry has to
        see the replacement.  Only :data:`RETRYABLE_ERRORS` are retried
        or counted against the breaker; admission shedding and
        validation errors pass straight through.
        """
        breaker = self._breakers[shard.index]
        if not breaker.allow():
            raise CircuitOpen(breaker.name, breaker.cooldown_s)

        def attempt() -> object:
            try:
                return op()
            except RETRYABLE_ERRORS:
                self._revive_engine(shard, key)
                raise

        try:
            result = self.resilience.retry.call(attempt, retry_on=RETRYABLE_ERRORS)
        except RETRYABLE_ERRORS:
            breaker.record_failure()
            raise
        breaker.record_success()
        return result

    # -- process backend plumbing -----------------------------------------------

    def _document_json(self, source: InMemorySource) -> object:
        """``source``'s document in codec JSON, memoized by identity.

        Benchmarks and servers ask against one shared source thousands
        of times; re-encoding the whole catalog per request would
        swamp the wire.  The memo is keyed by ``id`` with the source
        object held in the value, so a recycled id cannot alias a
        different document.
        """
        cached = self._doc_json.get(id(source))
        if cached is not None and cached[0] is source:
            return cached[1]
        document = tree_to_json(source.document())
        if len(self._doc_json) >= 8:
            self._doc_json.pop(next(iter(self._doc_json)))
        self._doc_json[id(source)] = (source, document)
        return document

    def _resilient_proc(
        self,
        shard: Shard,
        op: str,
        args: Dict[str, object],
        *,
        deadline: Optional[Deadline] = None,
    ) -> object:
        """The process-backend analogue of :meth:`_resilient`.

        The breaker and retry policy are the same objects; only the
        revival step differs — instead of rebuilding one engine from
        its journal in-process, :meth:`ProcWorkerPool.ensure` respawns
        the shard's worker, which resumes *every* journaled session in
        its namespace before the retry reaches it.  The caller's trace
        id and armed fault plan are captured here and ride the wire
        envelope (contextvars do not cross processes).
        """
        breaker = self._breakers[shard.index]
        if not breaker.allow():
            raise CircuitOpen(breaker.name, breaker.cooldown_s)
        pool = self._pool
        trace_id = current_trace_id()
        plan = active_plan()

        def attempt() -> object:
            try:
                return pool.request(
                    shard.index,
                    op,
                    args,
                    trace_id=trace_id,
                    deadline=deadline,
                    plan=plan,
                )
            except (WorkerFault, WorkerUnavailable):
                pool.ensure(shard.index)
                raise

        try:
            result = self.resilience.retry.call(
                attempt, retry_on=PROC_RETRYABLE_ERRORS
            )
        except PROC_RETRYABLE_ERRORS:
            breaker.record_failure()
            raise
        breaker.record_success()
        return result

    def _keyed_proc(
        self, op: str, family: str, key: str, args: Dict[str, object]
    ) -> object:
        """Route one keyed op to its shard's worker process.

        Admission, span, and latency-sketch bookkeeping mirror the
        thread path exactly; the shard lock has no process-mode
        counterpart because the worker serializes its own requests —
        the worker *is* the shard's write lock.  Unlike the thread
        backend, reads also pass the breaker: they take the same
        pipe round trip writes do, so a dead worker should shed them
        just as fast.
        """
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span(f"cluster.{family}", shard=shard.index, key=key):
                    value = self._resilient_proc(shard, op, dict(args, key=key))
            finally:
                reset_shard(token)
            self._observe_op(shard, family, time.perf_counter() - started)
            return value

    @staticmethod
    def _tree_from_optional(document: object) -> DataTree:
        return DataTree.empty() if document is None else tree_from_json(document)

    # -- keyed operations -------------------------------------------------------

    def record(self, key: str, query: PSQuery, answer: DataTree) -> None:
        """Refine session ``key``'s knowledge with one pair (write path)."""
        if self._backend == "process":
            self._keyed_proc(
                "record",
                "record",
                key,
                {"query": query_to_json(query), "answer": tree_to_json(answer)},
            )
            return
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span("cluster.record", shard=shard.index, key=key):
                    with shard.lock.write_locked():

                        def op() -> None:
                            engine = shard.engines.get(key)
                            if engine is None:
                                engine = self._new_engine(shard, key)
                            history = engine.history
                            if history and history[-1] == (query, answer):
                                # a crashed attempt persisted the pair
                                # before failing; the retry is already done
                                return
                            engine.record(query, answer)
                            engine.prepare()

                        self._resilient(shard, key, op)
            finally:
                reset_shard(token)
            self._observe_op(shard, "record", time.perf_counter() - started)

    def ask(self, key: str, source: InMemorySource, query: PSQuery) -> DataTree:
        """Query the source for session ``key`` and fold the answer in."""
        if self._backend == "process":
            value = self._keyed_proc(
                "ask",
                "ask",
                key,
                {
                    "query": query_to_json(query),
                    "document": self._document_json(source),
                },
            )
            return tree_from_json(value["answer"])
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span("cluster.ask", shard=shard.index, key=key):
                    with shard.lock.write_locked():

                        def op() -> DataTree:
                            engine = shard.engines.get(key)
                            if engine is None:
                                engine = self._new_engine(shard, key)
                            answer = engine.ask(source, query)
                            engine.prepare()
                            return answer

                        result = self._resilient(shard, key, op)
            finally:
                reset_shard(token)
            self._observe_op(shard, "ask", time.perf_counter() - started)
            return result

    def answer(self, key: str, query: PSQuery) -> Tuple[DataTree, bool]:
        """Session ``key``'s certain answer with caveat flag (read path).

        An unknown key answers from zero knowledge — empty sure part,
        ``may_have_more=True`` — *without* creating an engine, so probe
        traffic cannot grow the pool.
        """
        if self._backend == "process":
            value = self._keyed_proc(
                "answer", "answer", key, {"query": query_to_json(query)}
            )
            return (
                self._tree_from_optional(value["sure"]),
                bool(value["may_have_more"]),
            )
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span("cluster.answer", shard=shard.index, key=key):
                    with shard.lock.read_locked():
                        engine = shard.engines.get(key)
                        if engine is None:
                            result = DataTree.empty(), True
                        else:
                            result = engine.answer_with_caveats(query)
            finally:
                reset_shard(token)
            self._observe_op(shard, "answer", time.perf_counter() - started)
            return result

    def answer_info(self, key: str, query: PSQuery) -> Dict[str, object]:
        """:meth:`answer` plus the session's books, one lock round-trip.

        The HTTP ``/ask`` path needs the caveated answer *and* the
        session's knowledge size and history length for its response
        body; fetching them separately would take the shard's read lock
        (and an admission slot) twice per request.  Returns a dict with
        ``sure``, ``may_have_more``, ``shard``, ``knowledge_size``,
        ``queries_recorded``.
        """
        if self._backend == "process":
            value = self._keyed_proc(
                "answer_info", "answer", key, {"query": query_to_json(query)}
            )
            return {
                "sure": self._tree_from_optional(value["sure"]),
                "may_have_more": bool(value["may_have_more"]),
                "shard": value["shard"],
                "knowledge_size": value["knowledge_size"],
                "queries_recorded": value["queries_recorded"],
            }
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span("cluster.answer", shard=shard.index, key=key):
                    with shard.lock.read_locked():
                        engine = shard.engines.get(key)
                        if engine is None:
                            info: Dict[str, object] = {
                                "sure": DataTree.empty(),
                                "may_have_more": True,
                                "shard": shard.index,
                                "knowledge_size": 0,
                                "queries_recorded": 0,
                            }
                        else:
                            sure, more = engine.answer_with_caveats(query)
                            info = {
                                "sure": sure,
                                "may_have_more": more,
                                "shard": shard.index,
                                "knowledge_size": engine.size(),
                                "queries_recorded": len(engine.history),
                            }
            finally:
                reset_shard(token)
            self._observe_op(shard, "answer", time.perf_counter() - started)
            return info

    def ask_info(
        self, key: str, source: InMemorySource, query: PSQuery
    ) -> Dict[str, object]:
        """:meth:`ask` plus the session's books, one lock round-trip."""
        if self._backend == "process":
            value = self._keyed_proc(
                "ask_info",
                "ask",
                key,
                {
                    "query": query_to_json(query),
                    "document": self._document_json(source),
                },
            )
            return {
                "answer": tree_from_json(value["answer"]),
                "shard": value["shard"],
                "knowledge_size": value["knowledge_size"],
                "queries_recorded": value["queries_recorded"],
            }
        shard = self._shards[self.shard_of(key)]
        with self.admission.admit(shard.index):
            started = time.perf_counter()
            token = set_shard(shard.index)
            try:
                with _span("cluster.ask", shard=shard.index, key=key):
                    with shard.lock.write_locked():

                        def op() -> Dict[str, object]:
                            engine = shard.engines.get(key)
                            if engine is None:
                                engine = self._new_engine(shard, key)
                            answer = engine.ask(source, query)
                            engine.prepare()
                            return {
                                "answer": answer,
                                "shard": shard.index,
                                "knowledge_size": engine.size(),
                                "queries_recorded": len(engine.history),
                            }

                        info = self._resilient(shard, key, op)
            finally:
                reset_shard(token)
            self._observe_op(shard, "ask", time.perf_counter() - started)
            return info

    def engine(self, key: str) -> Optional[Webhouse]:
        """The engine behind ``key``, if the session exists (read lock).

        Process backend: engines live in worker processes; there is no
        local object to hand out, so this raises — callers that need
        per-session books should use :meth:`answer_info` instead.
        """
        if self._backend == "process":
            raise NotImplementedError(
                "backend='process' hosts engines in worker processes; "
                "use answer_info()/stats_all() for per-session books"
            )
        shard = self._shards[self.shard_of(key)]
        with shard.lock.read_locked():
            return shard.engines.get(key)

    # -- fleet operations -------------------------------------------------------

    def ask_all(self, query: PSQuery) -> Tuple[DataTree, bool]:
        """Fleet-wide certain answer: scatter, gather, deterministic union.

        Every shard evaluates the query against each of its sessions
        under its read lock (shards run in parallel); the per-session
        sure parts are then merged in globally sorted key order with
        :func:`overlay`.  Returns ``(union, may_have_more)`` where the
        flag is True when *any* session's knowledge might miss matches —
        or when the fleet holds no sessions at all.

        A failing, stalled (past the resilience deadline), or
        breaker-open shard *degrades* the fan-out instead of failing
        it: its sessions are simply absent from the union and
        ``may_have_more`` is forced True.  That direction is safe by
        Theorem 2.8/3.14 — every returned node is a certain answer of
        some healthy session, so a partial union never *invents*
        answers, it only misses some; the caveat flag owns the miss.
        Use :meth:`ask_all_info` to see which shards degraded.
        """
        info = self.ask_all_info(query)
        return info["sure"], info["may_have_more"]

    def ask_all_info(self, query: PSQuery) -> Dict[str, object]:
        """:meth:`ask_all` plus degradation books.

        Returns ``sure``, ``may_have_more``, ``degraded`` (True when any
        shard's sessions are missing from the union), ``failed_shards``
        (index → error summary), and ``sessions_answered``.
        """
        with _span("cluster.ask_all", shards=len(self._shards)):
            deadline = (
                Deadline.after(self.resilience.ask_all_deadline_s)
                if self.resilience.ask_all_deadline_s is not None
                else None
            )
            failed: Dict[int, str] = {}
            open_breakers = [
                shard.index
                for shard in self._shards
                if not self._breakers[shard.index].allow()
            ]
            live = [s for s in self._shards if s.index not in open_breakers]
            for index in open_breakers:
                failed[index] = f"CircuitOpen: shard-{index} is open"
            process = self._backend == "process"
            query_json = query_to_json(query) if process else None
            trace_id = current_trace_id()
            plan = active_plan()
            retryable = PROC_RETRYABLE_ERRORS if process else RETRYABLE_ERRORS

            def per_shard(_pos: int, shard: Shard) -> List[Tuple[str, DataTree, bool]]:
                with self.admission.admit(shard.index):
                    if process:
                        value = self._pool.request(
                            shard.index,
                            "answer_all",
                            {"query": query_json},
                            trace_id=trace_id,
                            deadline=deadline,
                            plan=plan,
                        )
                        return [
                            (row[0], tree_from_json(row[1]), bool(row[2]))
                            for row in value["rows"]
                        ]
                    with shard.lock.read_locked():
                        return [
                            (key, *engine.answer_with_caveats(query))
                            for key, engine in sorted(shard.engines.items())
                        ]

            outcomes = self.executor.scatter_outcomes(live, per_shard, deadline=deadline)
            rows: List[Tuple[str, DataTree, bool]] = []
            for shard, outcome in zip(live, outcomes):
                if outcome.ok:
                    rows.extend(outcome.value)
                else:
                    error = outcome.error
                    failed[shard.index] = f"{type(error).__name__}: {error}"
                    if isinstance(error, retryable):
                        self._breakers[shard.index].record_failure()
                        if process and isinstance(error, WorkerUnavailable):
                            # bring the shard back for the next fan-out;
                            # this round stays degraded (sound by monotonicity)
                            try:
                                self._pool.ensure(shard.index)
                            except WorkerUnavailable:
                                pass
            rows.sort(key=lambda row: row[0])
            merged: Optional[DataTree] = None
            may_have_more = not rows
            for _key, sure, more in rows:
                may_have_more = may_have_more or more
                if sure.is_empty():
                    continue
                merged = sure if merged is None else overlay(merged, sure)
            degraded = bool(failed)
            if _OBS.enabled:
                _OBS.metrics.inc("cluster.ask_all")
                if degraded:
                    _OBS.metrics.inc("cluster.ask_all_degraded")
            return {
                "sure": merged if merged is not None else DataTree.empty(),
                "may_have_more": may_have_more or degraded,
                "degraded": degraded,
                "failed_shards": failed,
                "sessions_answered": len(rows),
            }

    def merged_sketches(self) -> Dict[str, QuantileSketch]:
        """Fleet latency sketches: per-shard books merged per operation.

        Merge is associative and commutative, so the result is exactly
        the sketch of the pooled stream — the fleet p99 read off it is
        within the sketch's relative-error bound of the brute-force
        pooled-latency p99 (the PR 8 bench asserts this).  Fresh
        sketches are returned; the per-shard books are untouched.
        """
        return {
            op: QuantileSketch.merged(
                [shard.sketches[op] for shard in self._shards]
            )
            for op in SHARD_OPS
        }

    def stats_all(self) -> Dict[str, object]:
        """Fleet rollup: per-shard session books, admission stats, and
        merged fleet latency quantiles per keyed operation."""
        with _span("cluster.stats_all", shards=len(self._shards)):
            process = self._backend == "process"
            trace_id = current_trace_id()
            pool_stats = (
                {row["shard"]: row for row in self._pool.stats()} if process else {}
            )

            def per_shard(index: int, shard: Shard) -> Dict[str, object]:
                if process:
                    worker_row = pool_stats.get(index, {})
                    worker: Dict[str, object] = {
                        "pid": worker_row.get("pid"),
                        "alive": worker_row.get("alive", False),
                        "restarts": worker_row.get("restarts", 0),
                    }
                    try:
                        value = self._pool.request(
                            index, "stats", trace_id=trace_id
                        )
                    except WorkerError as exc:
                        # a dead shard degrades the rollup, never fails it
                        worker["alive"] = False
                        worker["error"] = str(exc)
                        return {
                            "shard": index,
                            "sessions": 0,
                            "session_keys": [],
                            "queries_recorded": 0,
                            "knowledge_size": 0,
                            "worker": worker,
                        }
                    worker["requests_handled"] = value["requests_handled"]
                    return {
                        "shard": index,
                        "sessions": value["sessions"],
                        "session_keys": value["session_keys"],
                        "queries_recorded": value["queries_recorded"],
                        "knowledge_size": value["knowledge_size"],
                        "worker": worker,
                    }
                with shard.lock.read_locked():
                    return {
                        "shard": index,
                        "sessions": len(shard.engines),
                        "session_keys": sorted(shard.engines),
                        "queries_recorded": sum(
                            len(engine.history) for engine in shard.engines.values()
                        ),
                        "knowledge_size": sum(
                            engine.size() for engine in shard.engines.values()
                        ),
                    }

            per_shard_stats = self.executor.scatter(self._shards, per_shard)
            admission = self.admission.stats()
            for stats, gate, breaker in zip(
                per_shard_stats, admission, self._breakers
            ):
                stats["admission"] = {
                    name: count for name, count in gate.items() if name != "shard"
                }
                stats["breaker"] = breaker.stats()
            rollup: Dict[str, object] = {
                "shards": len(self._shards),
                "backend": self._backend,
                "sessions": sum(s["sessions"] for s in per_shard_stats),
                "queries_recorded": sum(
                    s["queries_recorded"] for s in per_shard_stats
                ),
                "knowledge_size": sum(s["knowledge_size"] for s in per_shard_stats),
                "per_shard": per_shard_stats,
                "latency": {
                    op: sketch.summary()
                    for op, sketch in self.merged_sketches().items()
                    if sketch.count
                },
            }
            if process:
                # worker-side *service* time, next to the router-side
                # round-trip latency above; the gap between them is the
                # wire + scheduling overhead of the process hop
                rollup["worker_latency"] = {
                    op: sketch.summary()
                    for op, sketch in self._pool.worker_sketches().items()
                    if sketch.count
                }
            return rollup

    # -- inventory --------------------------------------------------------------

    def _worker_inventory(self) -> List[Dict[str, object]]:
        """Per-worker stats rows, skipping dead workers (process mode)."""
        rows: List[Dict[str, object]] = []
        for shard in self._shards:
            try:
                rows.append(self._pool.request(shard.index, "stats"))
            except WorkerError:
                continue
        return rows

    def sessions(self) -> List[str]:
        """All session keys, sorted (read-locks each shard in turn)."""
        if self._backend == "process":
            keys: List[str] = []
            for row in self._worker_inventory():
                keys.extend(row["session_keys"])
            return sorted(keys)
        keys = []
        for shard in self._shards:
            with shard.lock.read_locked():
                keys.extend(shard.engines)
        return sorted(keys)

    def size(self) -> int:
        """Total maintained knowledge size across every session."""
        if self._backend == "process":
            return sum(row["knowledge_size"] for row in self._worker_inventory())
        total = 0
        for shard in self._shards:
            with shard.lock.read_locked():
                total += sum(engine.size() for engine in shard.engines.values())
        return total

    def __len__(self) -> int:
        if self._backend == "process":
            return sum(row["sessions"] for row in self._worker_inventory())
        return sum(len(shard.engines) for shard in self._shards)

    # -- lifecycle --------------------------------------------------------------

    def resized(self, shards: int) -> Tuple["ShardedWebhouse", List[str]]:
        """A new cluster over ``shards`` shards, engines moved as routed.

        Consistent hashing keeps most keys in place: growing ``n`` to
        ``n+1`` moves an expected ``1/(n+1)`` of the sessions.  Returns
        the new cluster and the keys that changed shard (the rebalance
        cost a deployment would pay in session migrations).  Engines
        move by reference — in-memory only; durable namespaces are not
        relocated (a restart against the store re-resumes into the new
        layout's directories).
        """
        if self._backend == "process":
            raise NotImplementedError(
                "backend='process' cannot move live engines between "
                "processes; rebuild the cluster against the store"
            )
        new = ShardedWebhouse(
            self._alphabet,
            tree_type=self._tree_type,
            shards=shards,
            auto_minimize=self._auto_minimize,
            replicas=self.router.replicas,
            factory=self._factory,
            router=self.router.resized(shards),
        )
        moved: List[str] = []
        for shard in self._shards:
            with shard.lock.read_locked():
                for key, engine in shard.engines.items():
                    target = new.router.route(key)
                    new._shards[target].engines[key] = engine
                    if target != shard.index:
                        moved.append(key)
        return new, sorted(moved)

    def worker_sketches(self) -> Dict[str, QuantileSketch]:
        """Worker-side service-time sketches (empty under ``thread``)."""
        return self._pool.worker_sketches() if self._pool is not None else {}

    def worker_stats(self) -> List[Dict[str, object]]:
        """Per-worker lifecycle books (empty under ``thread``)."""
        return self._pool.stats() if self._pool is not None else []

    def pool(self) -> Optional[ProcWorkerPool]:
        """The worker pool (process backend only; ``None`` for thread)."""
        return self._pool

    def close(self) -> None:
        """Detach durable sessions and stop the executor (if owned)."""
        if self._pool is not None:
            self._pool.stop()
        for shard in self._shards:
            with shard.lock.write_locked():
                for engine in shard.engines.values():
                    if engine.session is not None:
                        engine.detach()
        if self._owns_executor:
            self.executor.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardedWebhouse(shards={len(self._shards)}, "
            f"backend={self._backend!r}, sessions={len(self)}, "
            f"policy={self.admission.policy!r})"
        )


__all__ = [
    "BACKENDS",
    "PROC_RETRYABLE_ERRORS",
    "RETRYABLE_ERRORS",
    "ResiliencePolicy",
    "SHARD_OPS",
    "Shard",
    "ShardedWebhouse",
]
