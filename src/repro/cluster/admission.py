"""Per-shard admission control: bounded queues and load shedding.

Every shard gets a bounded budget of in-flight operations.  When the
budget is exhausted the controller applies its backpressure policy:

* ``"shed"`` (default) — fail fast with :class:`ShardOverloaded`; the
  ops server maps it to HTTP 503 with a ``Retry-After`` hint, so one
  hot shard degrades loudly instead of queueing work without bound
  while the other shards stay healthy.
* ``"wait"`` — block up to ``wait_timeout_s`` for a slot, then raise
  :class:`ShardOverloaded` anyway.

The controller is advisory bookkeeping *around* the shard locks, not a
lock itself: it bounds how many requests may be waiting on or holding
a shard's :class:`~repro.cluster.locks.RWLock` at once.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List

from ..obs.state import STATE as _OBS

#: Backpressure policies understood by the controller.
POLICIES = ("shed", "wait")


class ShardOverloaded(RuntimeError):
    """A shard's in-flight budget is exhausted; retry later or elsewhere."""

    def __init__(self, shard: int, limit: int, policy: str):
        super().__init__(
            f"shard {shard} is at its in-flight limit ({limit}, policy={policy!r})"
        )
        self.shard = shard
        self.limit = limit
        self.policy = policy


class _ShardGate:
    """One shard's budget books, guarded by its own condition.

    Each gate owning its lock keeps admission strictly per-shard: traffic
    on a busy shard never serializes admissions on an idle one through a
    shared choke point.
    """

    __slots__ = ("cond", "in_flight", "admitted", "shed", "high_water")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.high_water = 0


class AdmissionController:
    """Bounded per-shard in-flight budgets with a backpressure policy."""

    def __init__(
        self,
        shards: int,
        max_in_flight: int = 64,
        policy: str = "shed",
        wait_timeout_s: float = 0.5,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if max_in_flight < 1:
            raise ValueError(f"need a positive in-flight budget, got {max_in_flight}")
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r} {POLICIES}")
        self.max_in_flight = int(max_in_flight)
        self.policy = policy
        self.wait_timeout_s = float(wait_timeout_s)
        self._gates: List[_ShardGate] = [_ShardGate() for _ in range(shards)]

    def _try_admit(self, gate: _ShardGate) -> bool:
        if gate.in_flight >= self.max_in_flight:
            return False
        gate.in_flight += 1
        gate.admitted += 1
        gate.high_water = max(gate.high_water, gate.in_flight)
        return True

    @contextmanager
    def admit(self, shard: int) -> Iterator[None]:
        """Hold one in-flight slot of ``shard`` for the ``with`` block.

        Raises :class:`ShardOverloaded` when no slot can be had under
        the configured policy.
        """
        gate = self._gates[shard]
        with gate.cond:
            admitted = self._try_admit(gate)
            if not admitted and self.policy == "wait":
                deadline = time.monotonic() + self.wait_timeout_s
                while not admitted:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    gate.cond.wait(remaining)
                    admitted = self._try_admit(gate)
            if not admitted:
                gate.shed += 1
                if _OBS.enabled:
                    _OBS.metrics.inc(f"cluster.shard.{shard}.shed")
                raise ShardOverloaded(shard, self.max_in_flight, self.policy)
        try:
            yield
        finally:
            with gate.cond:
                gate.in_flight -= 1
                gate.cond.notify_all()

    # -- introspection ----------------------------------------------------------

    def in_flight(self, shard: int) -> int:
        return self._gates[shard].in_flight

    def stats(self) -> List[Dict[str, int]]:
        """Per-shard admission books, shard order."""
        rows = []
        for index, gate in enumerate(self._gates):
            with gate.cond:
                rows.append(
                    {
                        "shard": index,
                        "in_flight": gate.in_flight,
                        "admitted": gate.admitted,
                        "shed": gate.shed,
                        "high_water": gate.high_water,
                    }
                )
        return rows

    def __repr__(self) -> str:
        total = sum(g.in_flight for g in self._gates)
        return (
            f"AdmissionController({len(self._gates)} shards, policy={self.policy!r}, "
            f"in_flight={total}/{self.max_in_flight * len(self._gates)})"
        )


__all__ = ["AdmissionController", "POLICIES", "ShardOverloaded"]
