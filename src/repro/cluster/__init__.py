"""repro.cluster — a sharded webhouse pool with scatter-gather answering.

The paper's mediator holds one incomplete tree per interaction (§3.4),
and Theorem 3.5 makes each session's knowledge a pure function of its
own history — sessions never share state, so the warehouse scales out
by *grouping* sessions, not by splitting any one session's knowledge.

This package is that grouping, zero-dependency like the rest of the
repo:

* :class:`~repro.cluster.ring.Router` — consistent-hash routing of
  session keys onto shard indices; stable across processes (BLAKE2b,
  not ``hash()``) and cheap to resize (~1/(n+1) keys move).
* :class:`~repro.cluster.locks.RWLock` — writer-preferring readers-
  writer lock; local answering shares, Refine excludes.
* :class:`~repro.cluster.admission.AdmissionController` — bounded
  per-shard in-flight budgets with ``shed`` / ``wait`` backpressure;
  overload raises :class:`~repro.cluster.admission.ShardOverloaded`
  (HTTP 503 at the ops plane).
* :class:`~repro.cluster.executor.Executor` — thread-pool scatter-
  gather with deterministic (item-order) gathering and the shard index
  bound to the observability context.
* :class:`~repro.cluster.sharded.ShardedWebhouse` — the pool itself:
  keyed ``record``/``ask``/``answer`` plus fleet-wide ``ask_all`` /
  ``stats_all`` whose certain-answer union is invariant under the
  shard count — and under the execution backend.
* :mod:`~repro.cluster.wire` — the length-prefixed, CRC-checked binary
  frame codec (canonical JSON payloads) the process backend speaks.
* :class:`~repro.cluster.proc.ProcWorkerPool` — one spawned worker
  process per shard (``backend="process"``), so shard work runs on
  real cores instead of timeslicing one GIL; dead workers respawn and
  revive their engines from the journal.

See ``docs/CLUSTER.md`` for routing, rebalancing, admission control,
and failure modes; ``repro serve --shards N --backend process`` puts
the pool behind the HTTP ops plane.
"""

from __future__ import annotations

from .admission import AdmissionController, POLICIES, ShardOverloaded
from .executor import Executor, TaskOutcome
from .locks import RWLock
from .proc import (
    ProcWorkerPool,
    WORKER_OPS,
    WorkerConfig,
    WorkerError,
    WorkerFault,
    WorkerUnavailable,
)
from .ring import DEFAULT_REPLICAS, Router, stable_hash
from .sharded import (
    BACKENDS,
    PROC_RETRYABLE_ERRORS,
    RETRYABLE_ERRORS,
    ResiliencePolicy,
    Shard,
    ShardedWebhouse,
)
from .wire import WireError

__all__ = [
    "AdmissionController",
    "BACKENDS",
    "DEFAULT_REPLICAS",
    "Executor",
    "POLICIES",
    "PROC_RETRYABLE_ERRORS",
    "ProcWorkerPool",
    "RETRYABLE_ERRORS",
    "ResiliencePolicy",
    "RWLock",
    "Router",
    "Shard",
    "ShardedWebhouse",
    "ShardOverloaded",
    "TaskOutcome",
    "WORKER_OPS",
    "WireError",
    "WorkerConfig",
    "WorkerError",
    "WorkerFault",
    "WorkerUnavailable",
    "stable_hash",
]
