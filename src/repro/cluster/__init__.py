"""repro.cluster — a sharded webhouse pool with scatter-gather answering.

The paper's mediator holds one incomplete tree per interaction (§3.4),
and Theorem 3.5 makes each session's knowledge a pure function of its
own history — sessions never share state, so the warehouse scales out
by *grouping* sessions, not by splitting any one session's knowledge.

This package is that grouping, zero-dependency like the rest of the
repo:

* :class:`~repro.cluster.ring.Router` — consistent-hash routing of
  session keys onto shard indices; stable across processes (BLAKE2b,
  not ``hash()``) and cheap to resize (~1/(n+1) keys move).
* :class:`~repro.cluster.locks.RWLock` — writer-preferring readers-
  writer lock; local answering shares, Refine excludes.
* :class:`~repro.cluster.admission.AdmissionController` — bounded
  per-shard in-flight budgets with ``shed`` / ``wait`` backpressure;
  overload raises :class:`~repro.cluster.admission.ShardOverloaded`
  (HTTP 503 at the ops plane).
* :class:`~repro.cluster.executor.Executor` — thread-pool scatter-
  gather with deterministic (item-order) gathering and the shard index
  bound to the observability context.
* :class:`~repro.cluster.sharded.ShardedWebhouse` — the pool itself:
  keyed ``record``/``ask``/``answer`` plus fleet-wide ``ask_all`` /
  ``stats_all`` whose certain-answer union is invariant under the
  shard count.

See ``docs/CLUSTER.md`` for routing, rebalancing, admission control,
and failure modes; ``repro serve --shards N`` puts the pool behind the
HTTP ops plane.
"""

from __future__ import annotations

from .admission import AdmissionController, POLICIES, ShardOverloaded
from .executor import Executor, TaskOutcome
from .locks import RWLock
from .ring import DEFAULT_REPLICAS, Router, stable_hash
from .sharded import RETRYABLE_ERRORS, ResiliencePolicy, Shard, ShardedWebhouse

__all__ = [
    "AdmissionController",
    "DEFAULT_REPLICAS",
    "Executor",
    "POLICIES",
    "RETRYABLE_ERRORS",
    "ResiliencePolicy",
    "RWLock",
    "Router",
    "Shard",
    "ShardedWebhouse",
    "ShardOverloaded",
    "TaskOutcome",
    "stable_hash",
]
