"""Consistent-hash routing of session keys onto shards.

The mediator keeps one incomplete tree per interaction (§3.4), and
Theorem 3.5 makes Refine a pure function of one session's history — so
the only routing requirement is *stability*: the same session key must
always reach the same shard, and resizing the fleet must move as few
sessions as possible (each moved session pays a resume/replay).

:class:`Router` is a classic consistent-hash ring: every shard owns
``replicas`` virtual points on a 64-bit circle, a key routes to the
first point clockwise from its own hash.  Hashes come from
:mod:`hashlib` (BLAKE2b), not ``hash()``, so routing is stable across
processes and ``PYTHONHASHSEED`` values — a journaled session resumed
by a different server process lands on the same shard.

Growing ``n`` shards to ``n+1`` moves an expected ``1/(n+1)`` of the
keys (only the keys whose arc the new shard's points capture); every
other key keeps its shard.  Compare a naive ``hash(key) % n``, which
moves ``(n-1)/n`` of them.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Tuple

#: Virtual points per shard; more points → smoother key distribution.
DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of ``text`` (BLAKE2b prefix)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Router:
    """An immutable consistent-hash ring over ``shards`` shard indices."""

    __slots__ = ("_shards", "_replicas", "_salt", "_points", "_owners")

    def __init__(
        self, shards: int, replicas: int = DEFAULT_REPLICAS, salt: str = "repro"
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        self._shards = int(shards)
        self._replicas = int(replicas)
        self._salt = salt
        ring: List[Tuple[int, int]] = []
        for shard in range(self._shards):
            for point in range(self._replicas):
                ring.append((stable_hash(f"{salt}/shard-{shard}#{point}"), shard))
        ring.sort()
        self._points = [h for h, _ in ring]
        self._owners = [s for _, s in ring]

    @property
    def shards(self) -> int:
        return self._shards

    @property
    def replicas(self) -> int:
        return self._replicas

    def route(self, key: str) -> int:
        """The shard index owning ``key`` (stable across processes)."""
        point = stable_hash(f"{self._salt}:{key}")
        index = bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def resized(self, shards: int) -> "Router":
        """A ring over a different shard count (same salt and replicas).

        Existing shards keep their virtual points, so only the keys on
        arcs captured by added points (or orphaned by removed ones)
        change owner.
        """
        return Router(shards, replicas=self._replicas, salt=self._salt)

    def distribution(self, keys: Iterable[str]) -> Dict[int, int]:
        """How many of ``keys`` land on each shard (all shards present)."""
        counts = {shard: 0 for shard in range(self._shards)}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def moved_keys(self, other: "Router", keys: Iterable[str]) -> List[str]:
        """The keys that route differently under ``other`` (rebalance cost)."""
        return [key for key in keys if self.route(key) != other.route(key)]

    def __repr__(self) -> str:
        return f"Router(shards={self._shards}, replicas={self._replicas})"


__all__ = ["DEFAULT_REPLICAS", "Router", "stable_hash"]
