"""Scatter-gather execution of per-shard work on a thread pool.

Fleet-wide operations (``ask_all``, ``stats_all``, checkpoints) fan one
callable out over every shard and gather the results **in shard
order** — the merge order is part of the cluster's determinism
contract, so gather never reorders by completion time.

Each task runs with the target shard bound to the observability
context (:func:`repro.obs.spans.set_shard`), so every engine span a
scattered task closes carries a ``shard`` attribute and profiles /
flight-recorder traces attribute work to shards even when the pool
thread is reused across shards.

Fault plans and trace ids are context-scoped and thread pools do not
inherit context, so :meth:`Executor.submit` captures the caller's
active plan (:func:`repro.faults.inject.active_plan`) *and* request
trace id (:func:`repro.obs.spans.current_trace_id`) and re-binds both
inside the task — a chaos scope around ``ask_all`` reaches every
per-shard task, and spans closed in pool threads carry the caller's
``X-Repro-Trace-Id`` instead of silently dropping trace parentage.
Only those two values are carried over, deliberately not the whole
context: spans opened in pool threads still stay parentless (the PR 6
attribution contract).  Each task consults the injection site
``cluster.task.<shard>`` before running, so schedules can stall,
delay, or fail one specific shard.

:meth:`scatter` raises the first (item-order) error after all tasks
finish; :meth:`scatter_outcomes` instead reports per-item
:class:`TaskOutcome`\\ s and enforces an optional gather deadline —
the building block for degraded partial fan-outs.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from ..faults.inject import (
    active_plan,
    armed as _faults_armed,
    check_site as _check_site,
    fault_scope,
)
from ..faults.policies import Deadline, DeadlineExceeded
from ..obs.spans import (
    current_trace_id,
    reset_shard,
    reset_trace_id,
    set_shard,
    set_trace_id,
    span as _span,
)

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class TaskOutcome(Generic[R]):
    """One scattered task's result: a value or the error that ate it."""

    index: int
    value: Optional[R] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class Executor:
    """A lazily-started thread pool with ordered scatter-gather."""

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    def submit(
        self, shard: int, fn: Callable[..., R], *args: object, **kwargs: object
    ) -> "Future[R]":
        """Run ``fn`` on the pool with ``shard`` bound to the obs context."""
        plan = active_plan()
        trace_id = current_trace_id()

        def bound() -> R:
            token = set_shard(shard)
            trace_token = set_trace_id(trace_id)
            try:
                with fault_scope(plan):
                    if _faults_armed():
                        _check_site(f"cluster.task.{shard}")
                    with _span("cluster.task", shard=shard):
                        return fn(*args, **kwargs)
            finally:
                reset_trace_id(trace_token)
                reset_shard(token)

        return self._ensure_pool().submit(bound)

    def scatter(
        self, items: Sequence[T], fn: Callable[[int, T], R]
    ) -> List[R]:
        """Run ``fn(index, item)`` for every item concurrently; gather in
        item order.

        The first exception (in item order, not completion order) is
        re-raised after every task has finished, so a failing shard
        cannot leave siblings running against torn-down state.
        """
        if not items:
            return []
        if len(items) == 1:
            # no pool hop for a single shard: same semantics, less latency
            return [self._run_inline(0, items[0], fn)]
        futures = [self.submit(index, fn, index, item) for index, item in enumerate(items)]
        results: List[R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # gather everything before raising
                if first_error is None:
                    first_error = exc
                results.append(None)  # type: ignore[arg-type]
        if first_error is not None:
            raise first_error
        return results

    def scatter_outcomes(
        self,
        items: Sequence[T],
        fn: Callable[[int, T], R],
        deadline: Optional[Deadline] = None,
    ) -> List[TaskOutcome[R]]:
        """Like :meth:`scatter`, but no exception wins: every item gets a
        :class:`TaskOutcome`, in item order.

        With a ``deadline``, each gather waits at most the remaining
        budget; an overrunning task (a stalled shard) is reported as
        :class:`DeadlineExceeded` without blocking the fan-out.  The
        task itself keeps running on its pool thread — threads cannot
        be preempted — but its result is abandoned.  The single-item
        inline shortcut is skipped under a deadline for the same
        reason: inline execution could not be timed out.
        """
        if not items:
            return []
        if len(items) == 1 and deadline is None:
            try:
                return [TaskOutcome(0, value=self._run_inline(0, items[0], fn))]
            except BaseException as exc:
                return [TaskOutcome(0, error=exc)]
        futures = [self.submit(index, fn, index, item) for index, item in enumerate(items)]
        outcomes: List[TaskOutcome[R]] = []
        for index, future in enumerate(futures):
            try:
                if deadline is None:
                    outcomes.append(TaskOutcome(index, value=future.result()))
                else:
                    remaining = deadline.remaining()
                    outcomes.append(
                        TaskOutcome(index, value=future.result(timeout=remaining))
                    )
            except FutureTimeoutError:
                future.cancel()
                outcomes.append(
                    TaskOutcome(
                        index,
                        error=DeadlineExceeded(
                            f"task {index} missed the gather deadline"
                        ),
                    )
                )
            except BaseException as exc:
                outcomes.append(TaskOutcome(index, error=exc))
        return outcomes

    def _run_inline(self, index: int, item: T, fn: Callable[[int, T], R]) -> R:
        token = set_shard(index)
        try:
            if _faults_armed():
                _check_site(f"cluster.task.{index}")
            with _span("cluster.task", shard=index):
                return fn(index, item)
        finally:
            reset_shard(token)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "running"
        return f"Executor(max_workers={self._max_workers}, {state})"


__all__ = ["Executor", "TaskOutcome"]
