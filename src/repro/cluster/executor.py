"""Scatter-gather execution of per-shard work on a thread pool.

Fleet-wide operations (``ask_all``, ``stats_all``, checkpoints) fan one
callable out over every shard and gather the results **in shard
order** — the merge order is part of the cluster's determinism
contract, so gather never reorders by completion time.

Each task runs with the target shard bound to the observability
context (:func:`repro.obs.spans.set_shard`), so every engine span a
scattered task closes carries a ``shard`` attribute and profiles /
flight-recorder traces attribute work to shards even when the pool
thread is reused across shards.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs.spans import reset_shard, set_shard, span as _span

T = TypeVar("T")
R = TypeVar("R")


class Executor:
    """A lazily-started thread pool with ordered scatter-gather."""

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    def submit(
        self, shard: int, fn: Callable[..., R], *args: object, **kwargs: object
    ) -> "Future[R]":
        """Run ``fn`` on the pool with ``shard`` bound to the obs context."""

        def bound() -> R:
            token = set_shard(shard)
            try:
                with _span("cluster.task", shard=shard):
                    return fn(*args, **kwargs)
            finally:
                reset_shard(token)

        return self._ensure_pool().submit(bound)

    def scatter(
        self, items: Sequence[T], fn: Callable[[int, T], R]
    ) -> List[R]:
        """Run ``fn(index, item)`` for every item concurrently; gather in
        item order.

        The first exception (in item order, not completion order) is
        re-raised after every task has finished, so a failing shard
        cannot leave siblings running against torn-down state.
        """
        if not items:
            return []
        if len(items) == 1:
            # no pool hop for a single shard: same semantics, less latency
            return [self._run_inline(0, items[0], fn)]
        futures = [self.submit(index, fn, index, item) for index, item in enumerate(items)]
        results: List[R] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # gather everything before raising
                if first_error is None:
                    first_error = exc
                results.append(None)  # type: ignore[arg-type]
        if first_error is not None:
            raise first_error
        return results

    def _run_inline(self, index: int, item: T, fn: Callable[[int, T], R]) -> R:
        token = set_shard(index)
        try:
            with _span("cluster.task", shard=index):
                return fn(index, item)
        finally:
            reset_shard(token)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "idle" if self._pool is None else "running"
        return f"Executor(max_workers={self._max_workers}, {state})"


__all__ = ["Executor"]
