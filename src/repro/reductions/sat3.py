"""The 3-SAT reduction of Theorem 3.6 (and Theorem 3.10's hardness).

Given a 3-CNF formula, build the paper's tree type and ps-query/answer
history so that the one-node tree ``root → val = 1`` is a *possible
prefix* of the trees consistent with the history iff the formula is
satisfiable.  The same construction drives the NP-hardness of
conjunctive-tree emptiness (Theorem 3.10) and experiment E8's scaling
benchmark.

Encoding (following the proof):

* input type: ``root → var* clause* val``; ``var → val``;
  ``clause → lit1 lit2 lit3``; ``liti → vali``.  A ``var`` node's value
  names a variable, its ``val`` child holds its truth value; a clause's
  ``liti`` values are signed literals (+x or -x), each with a ``vali``
  truth value.
* the history pins the variables and clauses as data (non-empty
  answers) and adds empty answers forcing: truth values in {0,1},
  literal values consistent with variable values, and — the crux —
  ``val = 1`` impossible when some clause has all-false literals.

Literals are encoded numerically: variable i is ``i``; the positive
literal is ``i`` and the negative one ``-i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Dict, List, Sequence, Tuple

from ..core.conditions import Cond
from ..core.query import PSQuery, linear_query, pattern
from ..core.tree import DataTree, node
from ..core.treetype import TreeType
from ..refine.conjunctive import ConjunctiveIncompleteTree, refine_plus_sequence
from ..refine.refine import QueryAnswer

#: A clause is three signed literals (±variable index, 1-based).
Clause = Tuple[int, int, int]

SAT_ALPHABET = (
    "root",
    "var",
    "val",
    "clause",
    "lit1",
    "lit2",
    "lit3",
    "val1",
    "val2",
    "val3",
)


def sat_tree_type() -> TreeType:
    """The input type from the proof of Theorem 3.6."""
    return TreeType.parse(
        """
        root: root
        root   -> var* clause* val
        var    -> val
        clause -> lit1 lit2 lit3
        lit1   -> val1
        lit2   -> val2
        lit3   -> val3
        """
    )


@dataclass(frozen=True)
class SatInstance:
    """The reduction artifacts for one formula."""

    n_vars: int
    clauses: Tuple[Clause, ...]
    tree_type: TreeType
    history: Tuple[QueryAnswer, ...]
    target_prefix: DataTree


def brute_force_sat(n_vars: int, clauses: Sequence[Clause]) -> bool:
    """Ground truth by exhaustive assignment."""
    for bits in iter_product((0, 1), repeat=n_vars):
        if all(
            any(
                (bits[abs(lit) - 1] == 1) == (lit > 0)
                for lit in clause
            )
            for clause in clauses
        ):
            return True
    return False


def build_instance(n_vars: int, clauses: Sequence[Clause]) -> SatInstance:
    """Materialize the Theorem 3.6 query/answer history for a formula."""
    clauses = tuple(clauses)
    history: List[QueryAnswer] = []

    # Query A: root/var — answer: one var node per variable
    q_vars = linear_query(["root", "var"])
    a_vars = DataTree.build(
        node(
            "R",
            "root",
            0,
            [node(f"v{i}", "var", i) for i in range(1, n_vars + 1)],
        )
    )
    history.append((q_vars, a_vars))

    # Query B: root/clause/{lit1,lit2,lit3} — answer: the clause encoding
    q_clauses = PSQuery(
        pattern(
            "root",
            children=[
                pattern(
                    "clause",
                    children=[pattern("lit1"), pattern("lit2"), pattern("lit3")],
                )
            ],
        )
    )
    clause_nodes = []
    for c_index, clause in enumerate(clauses):
        clause_nodes.append(
            node(
                f"c{c_index}",
                "clause",
                0,
                [
                    node(f"c{c_index}l{j}", f"lit{j}", clause[j - 1])
                    for j in (1, 2, 3)
                ],
            )
        )
    a_clauses = (
        DataTree.build(node("R", "root", 0, clause_nodes))
        if clauses
        else DataTree.empty()
    )
    history.append((q_clauses, a_clauses))

    not_boolean = ~(Cond.eq(0) | Cond.eq(1))

    # Query C: var values are 0/1 (empty answer)
    history.append(
        (linear_query(["root", "var", "val"], [None, None, not_boolean]), DataTree.empty())
    )
    # root's own val is 0/1
    history.append(
        (linear_query(["root", "val"], [None, not_boolean]), DataTree.empty())
    )
    # Query D: literal values are 0/1
    for j in (1, 2, 3):
        history.append(
            (
                linear_query(
                    ["root", "clause", f"lit{j}", f"val{j}"],
                    [None, None, None, not_boolean],
                ),
                DataTree.empty(),
            )
        )

    # Query E: literal truth values agree with variable truth values.
    # For each variable i, truth v, literal occurrence (sign), position j:
    # it is impossible that var i has value v while lit (sign·i) at
    # position j has a value different from the literal's value under v.
    seen: set = set()
    for clause in clauses:
        for j, lit in enumerate(clause, start=1):
            i = abs(lit)
            for v in (0, 1):
                lit_value = v if lit > 0 else 1 - v
                key = (i, v, lit, j)
                if key in seen:
                    continue
                seen.add(key)
                q = PSQuery(
                    pattern(
                        "root",
                        children=[
                            pattern("var", Cond.eq(i), [pattern("val", Cond.eq(v))]),
                            pattern(
                                "clause",
                                children=[
                                    pattern(
                                        f"lit{j}",
                                        Cond.eq(lit),
                                        [pattern(f"val{j}", ~Cond.eq(lit_value))],
                                    )
                                ],
                            ),
                        ],
                    )
                )
                history.append((q, DataTree.empty()))

    # Query F: val = 1 forbids an all-false clause
    q_false_clause = PSQuery(
        pattern(
            "root",
            children=[
                pattern("val", Cond.eq(1)),
                pattern(
                    "clause",
                    children=[
                        pattern("lit1", None, [pattern("val1", Cond.eq(0))]),
                        pattern("lit2", None, [pattern("val2", Cond.eq(0))]),
                        pattern("lit3", None, [pattern("val3", Cond.eq(0))]),
                    ],
                ),
            ],
        )
    )
    history.append((q_false_clause, DataTree.empty()))

    target = DataTree.build(node("R", "root", 0, [node("target-val", "val", 1)]))
    return SatInstance(
        n_vars, clauses, sat_tree_type(), tuple(history), target
    )


def decide_by_representation(instance: SatInstance) -> bool:
    """Decide satisfiability through the incomplete-information machinery.

    Builds the conjunctive incomplete tree of the history plus the input
    type, adds the ``val = 1`` requirement, and tests non-emptiness —
    the NP algorithm of Theorem 3.10 / Remark 3.11.
    """
    conj = refine_plus_sequence(
        SAT_ALPHABET, list(instance.history), instance.tree_type
    )
    # require val = 1: one more (virtual) query-answer pair stating that
    # root/val=1 returns the target nodes
    q_val = linear_query(["root", "val"], [None, Cond.eq(1)])
    conj = conj.refine_plus(q_val, instance.target_prefix, SAT_ALPHABET)
    return not conj.is_empty()
