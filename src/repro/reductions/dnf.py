"""The DNF-validity reduction of Theorem 4.1.

For ps-queries extended with *branching and optional subtrees*, the
certain-prefix question becomes co-NP-hard, by reduction from validity
of 3-DNF formulas.  This module materializes the proof's construction:

* input type ``root → val``, ``val → var*``, ``var → x``: one ``var``
  node per variable (value = the variable index), each with an ``x``
  child holding its truth value;
* the branching+optional query/answer pair forcing exactly one
  representative per variable with a Boolean value;
* the query q' whose body is, per disjunct, an *optional* ``val``
  subtree matching the disjunct's satisfying assignment — the
  one-node tree ``val`` is a certain prefix of q' answers iff the
  formula is valid.

Certainty over the (finite, 2^n-sized) space of consistent trees is
decided by explicit enumeration of assignments — the reduction target
is exactly this exponential, so the oracle is the honest algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import List, Sequence, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, node
from ..core.treetype import TreeType
from ..extensions.extended_query import ENode, ExtendedQuery, enode, optional

#: A disjunct of a 3-DNF formula: three signed literals.
Disjunct = Tuple[int, int, int]


def dnf_tree_type() -> TreeType:
    return TreeType.parse(
        """
        root: root
        root -> val
        val  -> var*
        var  -> x
        """
    )


def brute_force_validity(n_vars: int, disjuncts: Sequence[Disjunct]) -> bool:
    """Ground truth: every assignment satisfies some disjunct."""
    for bits in iter_product((0, 1), repeat=n_vars):
        if not any(
            all((bits[abs(lit) - 1] == 1) == (lit > 0) for lit in disjunct)
            for disjunct in disjuncts
        ):
            return False
    return True


def assignment_tree(bits: Sequence[int]) -> DataTree:
    """The consistent input encoding one truth assignment."""
    var_nodes = [
        node(
            f"v{i}",
            "var",
            i,
            [node(f"x{i}", "x", bits[i - 1])],
        )
        for i in range(1, len(bits) + 1)
    ]
    return DataTree.build(
        node("R", "root", 0, [node("V", "val", 0, var_nodes)])
    )


def setup_query(n_vars: int) -> ExtendedQuery:
    """The branching+optional query q fixing the variable representatives.

    Its recorded answer (one var per index, Boolean x) together with the
    type restricts consistent inputs to assignment trees.
    """
    children: List[ENode] = [
        enode("var", Cond.eq(i)) for i in range(1, n_vars + 1)
    ]
    children.append(
        optional(
            enode("var", children=[enode("x", ~(Cond.eq(0) | Cond.eq(1)))])
        )
    )
    return ExtendedQuery(enode("root", children=[enode("val", children=children)]))


def validity_query(disjuncts: Sequence[Disjunct]) -> ExtendedQuery:
    """The paper's q': one optional val subtree per disjunct, matching
    the disjunct's satisfying pattern."""
    subtrees: List[ENode] = []
    for disjunct in disjuncts:
        var_children = [
            enode(
                "var",
                Cond.eq(abs(lit)),
                children=[enode("x", Cond.eq(1 if lit > 0 else 0))],
            )
            for lit in disjunct
        ]
        subtrees.append(optional(enode("val", children=var_children)))
    return ExtendedQuery(enode("root", children=subtrees))


def certain_prefix_of_answers(
    n_vars: int, disjuncts: Sequence[Disjunct]
) -> bool:
    """Is the one-node ``val`` tree a certain prefix of q' answers over
    the consistent inputs?  Equals DNF validity (Theorem 4.1)."""
    query = validity_query(disjuncts)
    for bits in iter_product((0, 1), repeat=n_vars):
        answer = query.evaluate(assignment_tree(bits))
        has_val = any(
            answer.label(n) == "val" for n in answer.node_ids()
        ) if not answer.is_empty() else False
        if not has_val:
            return False
    return True
