"""Executable hardness constructions (Theorems 3.6, 4.1, 4.5, 4.7)."""

from .cfg import (
    Grammar,
    consistency_queries,
    difference_query,
    encode_derivation,
    encode_pair,
    pair_tree_type,
)
from .dependencies import (
    FD,
    IND,
    encode_relation,
    fd_query,
    ind_query,
    query_for,
    relation_tree_type,
    satisfies,
)
from .dnf import (
    assignment_tree,
    brute_force_validity,
    certain_prefix_of_answers,
    dnf_tree_type,
    setup_query,
    validity_query,
)
from .sat3 import (
    SAT_ALPHABET,
    SatInstance,
    brute_force_sat,
    build_instance,
    decide_by_representation,
    sat_tree_type,
)

__all__ = [
    "FD",
    "IND",
    "Grammar",
    "SAT_ALPHABET",
    "SatInstance",
    "assignment_tree",
    "brute_force_sat",
    "brute_force_validity",
    "build_instance",
    "certain_prefix_of_answers",
    "consistency_queries",
    "decide_by_representation",
    "difference_query",
    "dnf_tree_type",
    "encode_derivation",
    "encode_pair",
    "encode_relation",
    "fd_query",
    "ind_query",
    "pair_tree_type",
    "query_for",
    "relation_tree_type",
    "sat_tree_type",
    "satisfies",
    "setup_query",
    "validity_query",
]
