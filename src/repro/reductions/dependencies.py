"""The functional/inclusion-dependency reduction of Theorem 4.5.

With branching, data-value joins and negation, query emptiness over the
consistent inputs becomes undecidable, by reduction from implication of
functional and inclusion dependencies.  This module builds the proof's
artifacts: the relation-encoding tree type and, per dependency φ, the
query q_φ with ``q_φ(T) = ∅  iff  the relation encoded by T satisfies φ``.

The undecidability itself cannot (of course) be exhibited by running
code; what the tests verify is the reduction's *invariant* — the
equivalence above — on concrete relations, which is the entire content
of the construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, node
from ..core.treetype import TreeType
from ..core.values import Value, ValueInput, as_value
from ..extensions.extended_query import (
    ENode,
    ExtendedQuery,
    VarConstraint,
    enode,
    negated,
)

#: A relation instance: tuples over attributes A1..An (by position).
Relation = Sequence[Tuple[ValueInput, ...]]


@dataclass(frozen=True)
class FD:
    """Functional dependency lhs → rhs (attribute positions, 1-based)."""

    lhs: Tuple[int, ...]
    rhs: int


@dataclass(frozen=True)
class IND:
    """Inclusion dependency R[left] ⊆ R[right] (attribute positions)."""

    left: Tuple[int, ...]
    right: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.left) != len(self.right):
            raise ValueError("inclusion dependency sides must have equal arity")


def relation_tree_type(arity: int) -> TreeType:
    """``root → tuple*; tuple → A1 ... An`` (the proof's encoding)."""
    attrs = " ".join(f"A{i}" for i in range(1, arity + 1))
    return TreeType.parse(f"root: root\nroot -> tuple*\ntuple -> {attrs}")


def encode_relation(relation: Relation, arity: int) -> DataTree:
    """The data tree encoding a relation instance."""
    tuples = []
    for t_index, row in enumerate(relation):
        if len(row) != arity:
            raise ValueError(f"row {row!r} does not have arity {arity}")
        tuples.append(
            node(
                f"t{t_index}",
                "tuple",
                0,
                [
                    node(f"t{t_index}a{i}", f"A{i}", value)
                    for i, value in enumerate(row, start=1)
                ],
            )
        )
    return DataTree.build(node("R", "root", 0, tuples))


def fd_query(fd: FD) -> ExtendedQuery:
    """q_φ for a functional dependency: matches a *violation* (two tuples
    agreeing on lhs, differing on rhs), so emptiness ⟺ satisfaction."""
    def tuple_pattern(suffix: str) -> ENode:
        children = [
            enode(f"A{a}", var=f"L{a}") for a in fd.lhs
        ] + [enode(f"A{fd.rhs}", var=f"R{suffix}")]
        return enode("tuple", children=children)

    constraints = [VarConstraint("R1", "!=", "R2")]
    return ExtendedQuery(
        enode("root", children=[tuple_pattern("1"), tuple_pattern("2")]),
        constraints,
    )


def ind_query(ind: IND) -> ExtendedQuery:
    """q_φ for an inclusion dependency: matches a left-side tuple with
    *no* right-side witness (via a negated subtree)."""
    witness_children = [
        enode(f"A{a}", var=f"V{k}")
        for k, a in enumerate(ind.right, start=1)
    ]
    left_children = [
        enode(f"A{a}", var=f"V{k}")
        for k, a in enumerate(ind.left, start=1)
    ]
    return ExtendedQuery(
        enode(
            "root",
            children=[
                enode("tuple", children=left_children),
                negated(enode("tuple", children=witness_children)),
            ],
        )
    )


def satisfies(relation: Relation, dep) -> bool:
    """Direct relational semantics (ground truth for the tests)."""
    rows = [tuple(as_value(v) for v in row) for row in relation]
    if isinstance(dep, FD):
        for r1 in rows:
            for r2 in rows:
                if all(r1[a - 1] == r2[a - 1] for a in dep.lhs):
                    if r1[dep.rhs - 1] != r2[dep.rhs - 1]:
                        return False
        return True
    if isinstance(dep, IND):
        projections = {tuple(row[a - 1] for a in dep.right) for row in rows}
        return all(
            tuple(row[a - 1] for a in dep.left) in projections for row in rows
        )
    raise TypeError(f"unknown dependency {dep!r}")


def query_for(dep) -> ExtendedQuery:
    if isinstance(dep, FD):
        return fd_query(dep)
    if isinstance(dep, IND):
        return ind_query(dep)
    raise TypeError(f"unknown dependency {dep!r}")
