"""The context-free-grammar reduction of Theorem 4.7.

Extending ps-queries with recursive path expressions and data-value
(in)equality makes possible-emptiness undecidable, by reduction from
the (weak) CFG intersection-emptiness problem.  This module builds the
proof's machinery:

* :class:`Grammar` with Chomsky-normal-form conversion and the
  *position-split* transformation (no nonterminal occurs both first and
  second on right-hand sides), which makes the leftmost/rightmost
  terminal of a derivation reachable by a regular path ``l(A)`` /
  ``r(A)``;
* the input tree type ``root → S1 S2; A → B C | a; a|b → val1 val2``
  encoding a pair of derivation trees whose leaf words carry a
  successor chain of data values;
* the regular-path queries q₁..qₙ whose *emptiness* forces the two
  encoded words to share the same data-value indexing, and the final
  query q with ``q(T) = ∅ ⟺ w₁ = w₂``.

Tests verify the reduction invariants on concrete grammars — the full
undecidability is, by nature, not a runnable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.conditions import Cond
from ..core.tree import DataTree, NodeId, NodeSpec, node
from ..core.treetype import TreeType
from ..extensions.paths import (
    PathExpr,
    RegularPathQuery,
    RPConstraint,
    any_star,
    eps,
    rpnode,
    seq,
    sym,
)

#: Productions: nonterminal -> list of bodies, each a tuple of symbols
#: (nonterminals) or a single terminal string.
Productions = Dict[str, List[Tuple[str, ...]]]


@dataclass
class Grammar:
    """A context-free grammar over terminal alphabet {'a', 'b'}."""

    start: str
    productions: Productions
    terminals: Tuple[str, ...] = ("a", "b")

    def nonterminals(self) -> Set[str]:
        names = set(self.productions)
        for bodies in self.productions.values():
            for body in bodies:
                for symbol in body:
                    if symbol not in self.terminals:
                        names.add(symbol)
        return names

    # -- language (test oracle) ---------------------------------------------

    def derives(self, word: str, max_depth: int = 24) -> bool:
        """Membership test by memoized CYK-style recursion (CNF only)."""
        memo: Dict[Tuple[str, str], bool] = {}

        def rec(symbol: str, w: str) -> bool:
            key = (symbol, w)
            if key in memo:
                return memo[key]
            memo[key] = False
            result = False
            for body in self.productions.get(symbol, []):
                if len(body) == 1 and body[0] in self.terminals:
                    if w == body[0]:
                        result = True
                        break
                elif len(body) == 2:
                    for split in range(1, len(w)):
                        if rec(body[0], w[:split]) and rec(body[1], w[split:]):
                            result = True
                            break
                    if result:
                        break
            memo[key] = result
            return result

        return rec(self.start, word) if word else False

    def words(self, max_length: int) -> Set[str]:
        """All derived words up to a length (brute force over {a,b}*)."""
        result = set()
        frontier = [""]
        for _ in range(max_length):
            frontier = [w + t for w in frontier for t in self.terminals]
            for w in frontier:
                if self.derives(w):
                    result.add(w)
        return result

    # -- normal forms --------------------------------------------------------------

    def position_split(self) -> "Grammar":
        """The proof's extra requirement: no nonterminal occurs both as a
        first and as a second child.  Uses left/right copies ``A<`` and
        ``A>`` of every nonterminal."""
        def left(s: str) -> str:
            return s if s in self.terminals else f"{s}<"

        def right(s: str) -> str:
            return s if s in self.terminals else f"{s}>"

        productions: Productions = {}
        for head, bodies in self.productions.items():
            new_bodies: List[Tuple[str, ...]] = []
            for body in bodies:
                if len(body) == 1:
                    new_bodies.append(body)
                else:
                    new_bodies.append((left(body[0]), right(body[1])))
            for copy in (f"{head}<", f"{head}>"):
                productions[copy] = list(new_bodies)
        return Grammar(f"{self.start}<", productions, self.terminals)

    def leftmost_path(self) -> PathExpr:
        """l(start): the label path from the start symbol's node to the
        leftmost terminal of any derivation tree.

        Valid on position-split grammars: each nonterminal's children
        labels determine their order, so 'first children' are exactly
        those reachable via first-position occurrences.
        """
        return self._extreme_path(position=0)

    def rightmost_path(self) -> PathExpr:
        """r(start): ... to the rightmost terminal."""
        return self._extreme_path(position=1)

    def _extreme_path(self, position: int) -> PathExpr:
        """Regular expression for first/last-child chains: a path follows
        child symbols at the given body position until a terminal."""
        # build an NFA-like regex: union over chains; since chains can
        # loop, construct (step)* terminal where step = union of the
        # possible child labels... this needs per-state tracking, so we
        # build the regex by solving the linear system naively (small
        # grammars only).
        nonterminals = sorted(self.nonterminals())
        # step(A) = symbols B such that A -> (B first) or terminal t
        edges: Dict[str, Set[str]] = {n: set() for n in nonterminals}
        term_edges: Dict[str, Set[str]] = {n: set() for n in nonterminals}
        for head, bodies in self.productions.items():
            for body in bodies:
                if len(body) == 1 and body[0] in self.terminals:
                    term_edges[head].add(body[0])
                elif len(body) == 2:
                    edges[head].add(body[position])

        # regex via transitive closure with memo on visited sets
        def path_from(symbol: str, visited: frozenset) -> Optional[PathExpr]:
            options: List[PathExpr] = []
            for terminal in sorted(term_edges.get(symbol, ())):
                options.append(sym(terminal))
            for nxt in sorted(edges.get(symbol, ())):
                if nxt in visited:
                    continue  # loops unsupported in this naive expansion
                deeper = path_from(nxt, visited | {nxt})
                if deeper is not None:
                    options.append(sym(nxt).then(deeper))
            if not options:
                return None
            result = options[0]
            for option in options[1:]:
                result = result.alt(option)
            return result

        expr = path_from(self.start, frozenset({self.start}))
        if expr is None:
            raise ValueError("grammar derives no terminal on this side")
        return expr


def pair_tree_type(g1: Grammar, g2: Grammar) -> TreeType:
    """root → S1 S2, the grammars' productions, and the val1/val2 leaves."""
    lines = ["root: root", f"root -> {g1.start} {g2.start}"]
    seen: Set[str] = set()
    for grammar in (g1, g2):
        for head, bodies in grammar.productions.items():
            if head in seen:
                raise ValueError("grammars must have disjoint nonterminals")
            seen.add(head)
            alternatives = []
            for body in bodies:
                alternatives.append(" ".join(body))
            # tree types have one atom per label; the paper's type is a
            # DTD with alternation — we approximate with the union of all
            # symbols appearing in bodies, optional each (the queries and
            # the encoding discipline enforce the exact shape)
            symbols = sorted({s for body in bodies for s in body})
            lines.append(f"{head} -> " + " ".join(f"{s}?" for s in symbols))
    lines.append("a -> val1 val2")
    lines.append("b -> val1 val2")
    return TreeType.parse("\n".join(lines))


def encode_derivation(
    grammar: Grammar, word: str, start_index: int, prefix: str
) -> Tuple[NodeSpec, int]:
    """A derivation tree of ``word`` with successor data values on the
    leaves, starting at ``start_index``.  Returns (tree, next_index)."""
    counter = [0]
    index = [start_index]

    def derive2(symbol: str, w: str) -> Optional[NodeSpec]:
        for body in grammar.productions.get(symbol, []):
            if len(body) == 1 and body[0] in grammar.terminals:
                if w == body[0]:
                    counter[0] += 1
                    i = index[0]
                    index[0] += 1
                    leaf = node(
                        f"{prefix}t{counter[0]}",
                        body[0],
                        0,
                        [
                            node(f"{prefix}t{counter[0]}v1", "val1", i),
                            node(f"{prefix}t{counter[0]}v2", "val2", i + 1),
                        ],
                    )
                    return node(f"{prefix}m{counter[0]}", symbol, 0, [leaf])
            elif len(body) == 2:
                for split in range(1, len(w)):
                    left = derive2(body[0], w[:split])
                    if left is None:
                        continue
                    saved = index[0]
                    right = derive2(body[1], w[split:])
                    if right is not None:
                        counter[0] += 1
                        return node(
                            f"{prefix}m{counter[0]}", symbol, 0, [left, right]
                        )
                    index[0] = saved
        return None

    result = derive2(grammar.start, word)
    if result is None:
        raise ValueError(f"{word!r} not derivable from {grammar.start}")
    return result, index[0]


def encode_pair(g1: Grammar, w1: str, g2: Grammar, w2: str) -> DataTree:
    """The paper's two-derivation input tree with shared value indexing.

    Both words receive the *same* successor chain start, so equal-length
    words share indexes — the situation the queries q₁..qₙ enforce."""
    left, _next = encode_derivation(g1, w1, 1, "L")
    right, _next2 = encode_derivation(g2, w2, 1, "R")
    return DataTree.build(node("R0", "root", 0, [left, right]))


def consistency_queries(g1: Grammar, g2: Grammar) -> List[RegularPathQuery]:
    """q₁..qₙ: empty answers force successor discipline and equal
    indexing of the two leaf words (items (1) and (2) of the proof)."""
    queries: List[RegularPathQuery] = []
    for grammar, side in ((g1, "1"), (g2, "2")):
        start = sym(grammar.start)
        # (1a) the leftmost value is minimal: it never appears as a val2
        queries.append(
            RegularPathQuery(
                rpnode(
                    label="root",
                    children=[
                        rpnode(
                            edge=start.then(grammar.leftmost_path()).then(sym("val1")),
                            var="X",
                        ),
                        rpnode(edge=any_star().then(sym("val2")), var="X"),
                    ],
                )
            )
        )
        # (1b) no element is its own successor
        queries.append(
            RegularPathQuery(
                rpnode(
                    label="root",
                    children=[
                        rpnode(
                            edge=start.then(any_star()),
                            children=[
                                rpnode(edge=sym("val1"), var="X"),
                                rpnode(edge=sym("val2"), var="X"),
                            ],
                        )
                    ],
                )
            )
        )
        # (1c) distinct elements have distinct successors
        queries.append(
            RegularPathQuery(
                rpnode(
                    label="root",
                    children=[
                        rpnode(
                            edge=start.then(any_star()),
                            children=[
                                rpnode(edge=sym("val1"), var="X"),
                                rpnode(edge=sym("val2"), var="Y"),
                            ],
                        ),
                        rpnode(
                            edge=start.then(any_star()),
                            children=[
                                rpnode(edge=sym("val1"), var="Z"),
                                rpnode(edge=sym("val2"), var="Y"),
                            ],
                        ),
                    ],
                ),
                [RPConstraint("X", "!=", "Z")],
            )
        )
        # (1d) adjacency: for each production A -> B C, the rightmost
        # val2 under B equals the leftmost val1 under C
        for head, bodies in grammar.productions.items():
            for body in bodies:
                if len(body) != 2:
                    continue
                sub_left = Grammar(body[0], grammar.productions, grammar.terminals)
                sub_right = Grammar(body[1], grammar.productions, grammar.terminals)
                queries.append(
                    RegularPathQuery(
                        rpnode(
                            label="root",
                            children=[
                                rpnode(
                                    edge=any_star().then(sym(head)),
                                    children=[
                                        rpnode(
                                            edge=sym(body[0])
                                            .then(sub_left.rightmost_path())
                                            .then(sym("val2")),
                                            var="X",
                                        ),
                                        rpnode(
                                            edge=sym(body[1])
                                            .then(sub_right.leftmost_path())
                                            .then(sym("val1")),
                                            var="Y",
                                        ),
                                    ],
                                )
                            ],
                        ),
                        [RPConstraint("X", "!=", "Y")],
                    )
                )
    # (2a) equal leftmost values across the two sides
    queries.append(
        RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(
                        edge=sym(g1.start).then(g1.leftmost_path()).then(sym("val1")),
                        var="X",
                    ),
                    rpnode(
                        edge=sym(g2.start).then(g2.leftmost_path()).then(sym("val1")),
                        var="Y",
                    ),
                ],
            ),
            [RPConstraint("X", "!=", "Y")],
        )
    )
    # (2b) equal rightmost values
    queries.append(
        RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(
                        edge=sym(g1.start).then(g1.rightmost_path()).then(sym("val2")),
                        var="X",
                    ),
                    rpnode(
                        edge=sym(g2.start).then(g2.rightmost_path()).then(sym("val2")),
                        var="Y",
                    ),
                ],
            ),
            [RPConstraint("X", "!=", "Y")],
        )
    )
    # (2c) same val1 implies same val2 across the sides
    queries.append(
        RegularPathQuery(
            rpnode(
                label="root",
                children=[
                    rpnode(
                        edge=sym(g1.start).then(any_star()),
                        children=[
                            rpnode(edge=sym("val1"), var="X"),
                            rpnode(edge=sym("val2"), var="Y"),
                        ],
                    ),
                    rpnode(
                        edge=sym(g2.start).then(any_star()),
                        children=[
                            rpnode(edge=sym("val1"), var="X"),
                            rpnode(edge=sym("val2"), var="Z"),
                        ],
                    ),
                ],
            ),
            [RPConstraint("Y", "!=", "Z")],
        )
    )
    return queries


def difference_query() -> RegularPathQuery:
    """The final q: non-empty iff the two words differ at some shared
    index (an ``a`` and a ``b`` leaf with the same val1)."""
    return RegularPathQuery(
        rpnode(
            label="root",
            children=[
                rpnode(
                    edge=any_star().then(sym("a")).then(sym("val1")),
                    var="X",
                ),
                rpnode(
                    edge=any_star().then(sym("b")).then(sym("val1")),
                    var="X",
                ),
            ],
        )
    )
