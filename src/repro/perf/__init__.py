"""repro.perf — hash-consed terms and memoized hot paths.

Every Refine step (Theorem 3.5) and every q(T) evaluation (Theorem
3.14) re-derives the same sub-results: condition-emptiness fixpoints
(Lemma 2.5), type normalizations, bipartite matchings and whole
intersection products.  This package makes that work *shareable*:

* an :class:`~repro.perf.intern.InternPool` hash-conses the immutable
  term classes (``Cond``, ``Atom``, ``Disjunction``,
  ``ConditionalTreeType``) so structurally-equal terms are
  pointer-equal, and
* named, size-bounded :class:`~repro.perf.memo.LRUCache` tables memoize
  the PTIME subroutines behind structural fingerprints (see
  :mod:`repro.perf.state` for the catalogue).

Disabled by default.  Instrumented call sites check ``STATE.enabled``
— one attribute load — before touching a cache, so the uncached
configuration is byte-for-byte the seed behaviour.  Enabling caches
never changes any *answer*; the brute-force differential oracle
(``tests/oracle.py``) property-tests that equivalence.

Typical usage::

    import repro.perf as perf

    perf.enable_caches()            # process-wide, until disable_caches()
    ...                             # repeated workloads now share work
    perf.cache_stats()              # hit rates per table, JSON-ready

    with perf.cached():             # scoped: restore previous state after
        serve_many_queries()

    with perf.uncached():           # scoped opt-out (the oracle uses this)
        ground_truth = recompute()

Hit/miss counts are always kept per table; when ``repro.obs`` is
enabled they are mirrored as ``cache.<table>.hits`` / ``.misses``
counters so ``python -m repro stats --caches`` shows both views.
See ``docs/PERFORMANCE.md`` for keys, eviction and safety invariants.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

from .intern import InternPool
from .memo import DEFAULT_CAPACITY, LRUCache, MISS
from .state import STATE, PerfState, TABLE_CAPACITIES


def caches_enabled() -> bool:
    """Are the perf caches currently consulted?"""
    return STATE.enabled


def enable_caches() -> None:
    """Turn on interning and memoization process-wide."""
    STATE.enabled = True


def disable_caches() -> None:
    """Turn the caches off (cached entries stay until :func:`clear_caches`)."""
    STATE.enabled = False


def clear_caches() -> None:
    """Drop every cached entry and pooled term."""
    STATE.clear()


@contextmanager
def cached() -> Iterator[PerfState]:
    """Enable the caches for a block, restoring the previous flag after."""
    previous = STATE.enabled
    STATE.enabled = True
    try:
        yield STATE
    finally:
        STATE.enabled = previous


@contextmanager
def uncached() -> Iterator[PerfState]:
    """Disable the caches for a block (ground-truth recomputation)."""
    previous = STATE.enabled
    STATE.enabled = False
    try:
        yield STATE
    finally:
        STATE.enabled = previous


def cache_stats() -> Dict[str, object]:
    """All cache and pool statistics as one JSON-ready document."""
    return {
        "enabled": STATE.enabled,
        "tables": {name: cache.stats() for name, cache in STATE.caches.items()},
        "intern": STATE.pool.stats(),
    }


__all__ = [
    "DEFAULT_CAPACITY",
    "InternPool",
    "LRUCache",
    "MISS",
    "PerfState",
    "STATE",
    "TABLE_CAPACITIES",
    "cache_stats",
    "cached",
    "caches_enabled",
    "clear_caches",
    "disable_caches",
    "enable_caches",
    "uncached",
]
