"""Hash-consing of the library's immutable terms.

The representation layer builds the *same* small value objects over and
over: every Refine product recombines conditions with ``&``, every
disjunct expansion rebuilds atoms entry by entry, and long-lived
pipelines hold thousands of structurally identical
:class:`~repro.incomplete.conditional.ConditionalTreeType` rules.  An
:class:`InternPool` maps every term to one canonical instance so that

* structurally-equal terms become **pointer-equal** — ``a is b`` — which
  turns the deep ``__eq__``/``__hash__`` walks that dominate memo-key
  comparisons into identity checks on the CPython fast path, and
* the memo tables of :mod:`repro.perf.memo` key distinct logical values
  exactly once.

Interning is **safe precisely because the interned classes are immutable
value objects whose ``__eq__`` agrees with their semantics**:

* ``Cond`` compares by *denotation* (Lemma 2.3 normal form), so two
  syntactically different conditions with the same value set collapse to
  one representative — sound everywhere the library consumes conditions,
  because every consumer goes through the denotation.
* ``Atom`` / ``Disjunction`` compare structurally (order-normalized).
* ``ConditionalTreeType`` compares by full rule structure.

Never intern mutable state (histories, builders, metrics).  See
``docs/PERFORMANCE.md`` for the contract.

Pools are LRU-bounded: interning must never become an unbounded leak on
adversarial workloads (Example 3.2 can mint 2^n distinct symbols).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Dict

from .memo import LRUCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.conditions import Cond
    from ..core.multiplicity import Atom, Disjunction
    from ..incomplete.conditional import ConditionalTreeType

#: Per-kind pool capacities.  Conditions and atoms are tiny and shared
#: everywhere; types are larger, so fewer are kept.
POOL_CAPACITIES = {
    "cond": 8192,
    "atom": 8192,
    "disjunction": 8192,
    "type": 1024,
}


class InternPool:
    """Canonical-instance tables for the immutable term classes."""

    __slots__ = ("_conds", "_atoms", "_disjunctions", "_types")

    def __init__(self) -> None:
        self._conds = LRUCache("intern.cond", POOL_CAPACITIES["cond"])
        self._atoms = LRUCache("intern.atom", POOL_CAPACITIES["atom"])
        self._disjunctions = LRUCache(
            "intern.disjunction", POOL_CAPACITIES["disjunction"]
        )
        self._types = LRUCache("intern.type", POOL_CAPACITIES["type"])

    # -- term kinds -------------------------------------------------------------

    def symbol(self, symbol: str) -> str:
        """Canonicalize a tree-type symbol / label via ``sys.intern``.

        Symbol strings are compared constantly (dict keys of µ, σ and
        every atom entry); interned strings compare by pointer first.
        """
        return sys.intern(symbol)

    def cond(self, cond: "Cond") -> "Cond":
        """One representative per condition *denotation*."""
        return self._conds.get_or_put(cond, cond)

    def atom(self, atom: "Atom") -> "Atom":
        return self._atoms.get_or_put(atom, atom)

    def disjunction(self, disjunction: "Disjunction") -> "Disjunction":
        return self._disjunctions.get_or_put(disjunction, disjunction)

    def type(self, tree_type: "ConditionalTreeType") -> "ConditionalTreeType":
        return self._types.get_or_put(tree_type.cache_key(), tree_type)

    # -- bookkeeping ------------------------------------------------------------

    def _tables(self) -> Dict[str, LRUCache]:
        return {
            "cond": self._conds,
            "atom": self._atoms,
            "disjunction": self._disjunctions,
            "type": self._types,
        }

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-kind pool statistics (a hit = a successfully shared term)."""
        return {kind: table.stats() for kind, table in self._tables().items()}

    def clear(self) -> None:
        for table in self._tables().values():
            table.clear()

    def __repr__(self) -> str:
        sizes = ", ".join(f"{k}={len(t)}" for k, t in self._tables().items())
        return f"InternPool({sizes})"
