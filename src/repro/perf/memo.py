"""Size-bounded LRU memo tables — the memoization half of ``repro.perf``.

A :class:`LRUCache` is a keyed table with a hard capacity, least-
recently-used eviction and always-on hit/miss/eviction books.  When the
global observability switch is on, every lookup is additionally mirrored
into ``repro.obs`` counters (``cache.<name>.hits`` /
``cache.<name>.misses``) so cache effectiveness shows up in ``python -m
repro stats`` next to the rest of the instrumentation.

Keys must be hashable and **must determine the cached value exactly**:
the caches in this package are only installed behind keys derived from
immutable value objects (denotation-hashed conditions, structural
fingerprints of types — see ``docs/PERFORMANCE.md`` for the catalogue).

Lookups return the sentinel :data:`MISS` rather than raising; the hot
paths stay branch-only::

    value = cache.get(key)
    if value is MISS:
        value = compute()
        cache.put(key, value)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from ..obs.state import STATE as _OBS

#: Unique sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()

#: Default capacity for a table when none is configured.
DEFAULT_CAPACITY = 4096


class LRUCache:
    """A named, capacity-bounded LRU map with hit/miss accounting.

    Thread-safe: lookups and insertions hold a per-cache lock (the
    OrderedDict reordering on hit is a mutation, so even reads write).
    """

    __slots__ = ("name", "capacity", "hits", "misses", "evictions", "_data", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any:
        """The cached value, or :data:`MISS`; refreshes recency on hit."""
        with self._lock:
            value = self._data.get(key, MISS)
            if value is MISS:
                self.misses += 1
                hit = False
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        if _OBS.enabled:
            _OBS.metrics.inc(f"cache.{self.name}.{'hits' if hit else 'misses'}")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) a key, evicting the LRU entry when full."""
        evicted = False
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted and _OBS.enabled:
            _OBS.metrics.inc(f"cache.{self.name}.evictions")

    def get_or_put(self, key: Hashable, value: Any) -> Any:
        """Intern-style upsert: the previously cached equal value when
        present, else ``value`` after caching it."""
        with self._lock:
            cached = self._data.get(key, MISS)
            if cached is not MISS:
                self._data.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            return value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop entries; the hit/miss books survive (they describe the
        workload, not the contents)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """JSON-ready summary for ``stats --caches``."""
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache({self.name!r}, {len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
