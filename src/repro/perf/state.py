"""Global performance-cache state: one slotted singleton, one flag.

Mirrors the design of :mod:`repro.obs.state`: hot paths import
:data:`STATE` and guard every cache interaction with ``if
STATE.enabled:`` — a single attribute load — so the disabled default
costs nothing and, crucially, **behaves byte-for-byte like the uncached
code**.  All caches in this package are keyed by immutable value
objects, so enabling them changes performance only; the differential
oracle suite (``tests/test_oracle.py``) enforces that.

The state owns the interning pool and the named memo tables:

======================  ======================================================
``emptiness``           ``ConditionalTreeType.productive_symbols`` (and with
                        it ``is_empty``, Lemma 2.5) per type fingerprint
``normalize``           ``ConditionalTreeType.normalized`` per fingerprint
``matching``            ``max_bipartite_matching`` / ``feasible_assignment``
                        per (items, slots, adjacency) shape
``type_intersect``      ``intersect_with_tree_type`` (Theorem 3.5) per
                        (incomplete tree, tree type)
``refine``              one Refine step (Theorem 3.4) per
                        (state, query, answer, alphabet, normalize)
``minimize``            ``merge_equivalent_symbols`` per incomplete tree
``query_incomplete``    ``query_incomplete`` (Theorem 3.14) per
                        (incomplete tree, query)
======================  ======================================================
"""

from __future__ import annotations

from typing import Dict

from .intern import InternPool
from .memo import LRUCache

#: Default table capacities.  ``matching`` sees the most distinct small
#: keys (one per (children, atom) shape); the tree-level tables hold
#: bigger values and need fewer slots.
TABLE_CAPACITIES: Dict[str, int] = {
    "emptiness": 2048,
    "normalize": 1024,
    "matching": 8192,
    "type_intersect": 256,
    "refine": 256,
    "minimize": 256,
    "query_incomplete": 512,
}


class PerfState:
    __slots__ = ("enabled", "pool", "caches")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.pool = InternPool()
        self.caches: Dict[str, LRUCache] = {
            name: LRUCache(name, capacity)
            for name, capacity in TABLE_CAPACITIES.items()
        }

    def clear(self) -> None:
        """Drop every cached entry and pooled term (flag is kept)."""
        self.pool.clear()
        for cache in self.caches.values():
            cache.clear()

    def reset_stats(self) -> None:
        for cache in self.caches.values():
            cache.reset_stats()


#: The process-wide performance-cache state.
STATE = PerfState()
