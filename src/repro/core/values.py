"""Data values for XML trees.

The paper fixes the value domain Q to the rational numbers "for
simplicity", but its running catalog example freely uses string values
(``elec``, ``camera``, ``Canon``).  We therefore support a two-sorted
domain: exact rationals (``fractions.Fraction``) and strings.  Numeric
comparisons (``<``, ``<=`` ...) never hold between a string and a number;
equality across sorts is always false.

All values entering the library are normalized through :func:`as_value`,
so downstream code can rely on every numeric value being a ``Fraction``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

#: The runtime type of a normalized data value.
Value = Union[Fraction, str]

#: Types accepted by :func:`as_value` for numeric input.
NumericInput = Union[int, float, Fraction]

ValueInput = Union[NumericInput, str]


def as_value(raw: ValueInput) -> Value:
    """Normalize ``raw`` into the library's value domain.

    Integers and floats are converted to exact :class:`~fractions.Fraction`
    instances (floats via ``Fraction(str(f))`` would be lossy in surprising
    ways, so we use the exact binary expansion ``Fraction(f)``); strings are
    kept as-is.  Booleans are rejected: they are almost always a bug when
    used as data values.

    >>> as_value(3)
    Fraction(3, 1)
    >>> as_value("elec")
    'elec'
    """
    if isinstance(raw, bool):
        raise TypeError("booleans are not data values; use 0/1 or a string")
    if isinstance(raw, Fraction):
        return raw
    if isinstance(raw, int):
        return Fraction(raw)
    if isinstance(raw, float):
        return Fraction(raw)
    if isinstance(raw, str):
        return raw
    raise TypeError(f"unsupported data value: {raw!r} ({type(raw).__name__})")


def is_numeric(value: Value) -> bool:
    """True when ``value`` lives in the rational sort of the domain."""
    return isinstance(value, Fraction)


def is_string(value: Value) -> bool:
    """True when ``value`` lives in the string sort of the domain."""
    return isinstance(value, str)


def value_repr(value: Value) -> str:
    """Short human-readable rendering used in reprs and XML output."""
    if isinstance(value, str):
        return value
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def values_equal(left: Value, right: Value) -> bool:
    """Equality in the two-sorted domain (cross-sort is always false)."""
    if isinstance(left, str) != isinstance(right, str):
        return False
    return left == right
