"""XML serialization of data trees.

The paper's Webhouse stores XML documents; this module round-trips
:class:`~repro.core.tree.DataTree` instances through a plain XML dialect
where node ids and data values ride along as attributes::

    <catalog id="c1" value="0">
      <product id="p-canon" value="0"> ... </product>
    </catalog>

Rational values serialize as ``num`` or ``num/den``; strings as-is with
a ``kind="str"`` marker so parsing is unambiguous.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional
from xml.etree import ElementTree as ET

from .tree import DataTree, NodeId, NodeSpec, node
from .values import Value, value_repr


def tree_to_xml(tree: DataTree) -> str:
    """Serialize a data tree to an XML string (empty tree -> ``<empty/>``)."""
    if tree.is_empty():
        return "<empty/>"
    element = _build_element(tree, tree.root)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _build_element(tree: DataTree, node_id: NodeId) -> ET.Element:
    value = tree.value(node_id)
    element = ET.Element(
        tree.label(node_id),
        {
            "id": node_id,
            "value": value_repr(value),
            **({"kind": "str"} if isinstance(value, str) else {}),
        },
    )
    for child in tree.children(node_id):
        element.append(_build_element(tree, child))
    return element


def tree_from_xml(text: str) -> DataTree:
    """Parse the XML dialect produced by :func:`tree_to_xml`."""
    root = ET.fromstring(text)
    if root.tag == "empty":
        return DataTree.empty()
    return DataTree.build(_parse_element(root))


def _parse_element(element: ET.Element) -> NodeSpec:
    node_id = element.attrib.get("id")
    if node_id is None:
        raise ValueError(f"<{element.tag}> is missing the id attribute")
    raw = element.attrib.get("value", "0")
    value: Value
    if element.attrib.get("kind") == "str":
        value = raw
    else:
        value = Fraction(raw)
    children = [_parse_element(child) for child in element]
    return node(node_id, element.tag, value, children)
