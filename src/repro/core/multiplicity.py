"""Multiplicity atoms (paper Definition 2.2).

A multiplicity atom ``a1^w1 ... ak^wk`` lists distinct symbols with a
multiplicity each; a node of the described type may only have children
whose symbol appears in the atom, with the per-symbol count constrained
by the multiplicity:

====  ================================
``1``  exactly one child
``?``  at most one child
``+``  at least one child
``*``  any number of children
====  ================================

Conditional tree types use *disjunctions* of atoms; conjunctive
incomplete trees (Section 3.2) additionally use *conjunctions of
disjunctions*.  All three layers are immutable value objects here.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


class Mult(Enum):
    """One of the four multiplicities ``1 ? + *``."""

    ONE = "1"
    OPT = "?"
    PLUS = "+"
    STAR = "*"

    @property
    def min_count(self) -> int:
        return 1 if self in (Mult.ONE, Mult.PLUS) else 0

    @property
    def max_count(self) -> Optional[int]:
        """Maximum allowed count, None meaning unbounded."""
        return 1 if self in (Mult.ONE, Mult.OPT) else None

    def allows(self, count: int) -> bool:
        if count < self.min_count:
            return False
        maximum = self.max_count
        return maximum is None or count <= maximum

    def meet(self, other: "Mult") -> Optional["Mult"]:
        """The multiplicity allowing exactly the counts both allow.

        Returns None when the intersection of allowed counts is empty
        (never happens for the four standard multiplicities, all of which
        allow count 1 — kept for clarity).  Precomputed table: this sits
        on the product construction's hot path.
        """
        return _MEET[self, other]

    @property
    def required(self) -> bool:
        """True when at least one child is guaranteed (``1`` or ``+``)."""
        return self.min_count >= 1

    def relaxed(self) -> "Mult":
        """The multiplicity allowing absence as well (1 -> ?, + -> *)."""
        if self is Mult.ONE:
            return Mult.OPT
        if self is Mult.PLUS:
            return Mult.STAR
        return self

    def required_version(self) -> "Mult":
        """The multiplicity forcing presence (? -> 1, * -> +)."""
        if self is Mult.OPT:
            return Mult.ONE
        if self is Mult.STAR:
            return Mult.PLUS
        return self

    def __repr__(self) -> str:
        return self.value


def _from_bounds(min_count: int, max_count: Optional[int]) -> Optional[Mult]:
    if max_count is not None and max_count < min_count:
        return None
    if min_count == 0:
        return Mult.OPT if max_count == 1 else Mult.STAR
    if min_count == 1:
        return Mult.ONE if max_count == 1 else Mult.PLUS
    # min_count >= 2 is not expressible in the paper's multiplicity language
    raise ValueError(f"multiplicity with min count {min_count} is not expressible")


def parse_mult(text: str) -> Mult:
    """Parse ``1 ? + *`` (the figures' ``⋆`` is also accepted)."""
    normalized = "*" if text in ("*", "⋆") else text
    for mult in Mult:
        if mult.value == normalized:
            return mult
    raise ValueError(f"unknown multiplicity {text!r}")


class Atom:
    """A multiplicity atom: a finite map symbol -> Mult.

    The empty atom (``ε`` in the paper) describes leaf types: no children
    allowed.
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[str, Mult] | Iterable[Tuple[str, Mult]] = ()):
        if isinstance(entries, Mapping):
            pairs = entries.items()
        else:
            pairs = list(entries)
        seen: Dict[str, Mult] = {}
        for symbol, mult in pairs:
            if symbol in seen:
                raise ValueError(f"symbol {symbol!r} repeated in multiplicity atom")
            seen[symbol] = mult
        self._entries: Tuple[Tuple[str, Mult], ...] = tuple(sorted(seen.items()))
        # atoms key the matching memo and every disjunction set; caching
        # the hash keeps those lookups from re-walking the entry tuple
        self._hash: Optional[int] = None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def leaf() -> "Atom":
        """The empty atom ``ε`` (no children)."""
        return _LEAF

    @staticmethod
    def of(**kwargs: str) -> "Atom":
        """Convenience: ``Atom.of(product='+', name='1')``."""
        return Atom({symbol: parse_mult(m) for symbol, m in kwargs.items()})

    @staticmethod
    def stars(symbols: Iterable[str]) -> "Atom":
        """``a1^* ... ak^*`` — the paper's ``all*`` over the given symbols."""
        return Atom({symbol: Mult.STAR for symbol in symbols})

    # -- queries ---------------------------------------------------------------

    @property
    def symbols(self) -> Tuple[str, ...]:
        return tuple(symbol for symbol, _ in self._entries)

    def mult(self, symbol: str) -> Optional[Mult]:
        """The multiplicity of ``symbol``, or None when absent."""
        for sym, mult in self._entries:
            if sym == symbol:
                return mult
        return None

    def items(self) -> Iterator[Tuple[str, Mult]]:
        return iter(self._entries)

    def is_leaf(self) -> bool:
        return not self._entries

    def required_symbols(self) -> Tuple[str, ...]:
        """Symbols whose multiplicity forces at least one child."""
        return tuple(sym for sym, mult in self._entries if mult.required)

    def size(self) -> int:
        return len(self._entries)

    # -- rewriting ----------------------------------------------------------------

    def with_mult(self, symbol: str, mult: Mult) -> "Atom":
        entries = dict(self._entries)
        entries[symbol] = mult
        return Atom(entries)

    def without(self, symbol: str) -> "Atom":
        return Atom([(s, m) for s, m in self._entries if s != symbol])

    def restrict(self, keep: Iterable[str]) -> "Atom":
        keep_set = set(keep)
        return Atom([(s, m) for s, m in self._entries if s in keep_set])

    def rename(self, mapping: Mapping[str, str]) -> "Atom":
        """Rename symbols (must stay injective on this atom's symbols)."""
        return Atom([(mapping.get(s, s), m) for s, m in self._entries])

    def merge(self, other: "Atom") -> "Atom":
        """Disjoint union of two atoms (symbol overlap is an error)."""
        entries = dict(self._entries)
        for symbol, mult in other._entries:
            if symbol in entries:
                raise ValueError(f"symbol {symbol!r} present in both atoms")
            entries[symbol] = mult
        return Atom(entries)

    # -- dunder --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, Atom):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._entries)
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        if not self._entries:
            return "ε"
        parts = []
        for symbol, mult in self._entries:
            suffix = "" if mult is Mult.ONE else mult.value
            parts.append(f"{symbol}{suffix}")
        return " ".join(parts)


class Disjunction:
    """A disjunction of multiplicity atoms (right-hand side of a rule).

    The order of atoms is normalized away; duplicates are removed.  An
    empty disjunction is *unsatisfiable* (no allowed child multiset) —
    distinct from the singleton disjunction of the leaf atom, which
    allows exactly the empty child multiset.
    """

    __slots__ = ("_atoms", "_hash")

    def __init__(self, atoms: Iterable[Atom] = ()):
        unique = []
        seen = set()
        for atom in atoms:
            if atom not in seen:
                seen.add(atom)
                unique.append(atom)
        self._atoms: Tuple[Atom, ...] = tuple(unique)
        self._hash: Optional[int] = None

    @staticmethod
    def leaf() -> "Disjunction":
        return Disjunction([Atom.leaf()])

    @staticmethod
    def single(atom: Atom) -> "Disjunction":
        return Disjunction([atom])

    @staticmethod
    def never() -> "Disjunction":
        """The unsatisfiable disjunction (no atom)."""
        return Disjunction()

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    def is_never(self) -> bool:
        return not self._atoms

    def symbols(self) -> Tuple[str, ...]:
        seen = []
        for atom in self._atoms:
            for symbol in atom.symbols:
                if symbol not in seen:
                    seen.append(symbol)
        return tuple(seen)

    def map_atoms(self, fn) -> "Disjunction":
        """Apply ``fn: Atom -> Atom | None`` to every atom; None drops it."""
        rewritten = []
        for atom in self._atoms:
            result = fn(atom)
            if result is not None:
                rewritten.append(result)
        return Disjunction(rewritten)

    def union(self, other: "Disjunction") -> "Disjunction":
        return Disjunction(self._atoms + other._atoms)

    def size(self) -> int:
        """Total number of (symbol, mult) entries, for blowup measurements."""
        return sum(max(1, atom.size()) for atom in self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, Disjunction):
            return NotImplemented
        return set(self._atoms) == set(other._atoms)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._atoms))
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        if not self._atoms:
            return "∅"
        return " | ".join(repr(atom) for atom in self._atoms)


class Conjunction:
    """A conjunction of disjunctions of atoms (conjunctive trees, §3.2).

    A child multiset is allowed iff it satisfies *every* conjunct.  A
    conjunction with no conjuncts allows everything over... nothing —
    we disallow the empty conjunction; use a single ``all*`` disjunct to
    mean "anything".
    """

    __slots__ = ("_conjuncts",)

    def __init__(self, conjuncts: Iterable[Disjunction]):
        self._conjuncts: Tuple[Disjunction, ...] = tuple(conjuncts)
        if not self._conjuncts:
            raise ValueError("a conjunction needs at least one conjunct")

    @staticmethod
    def single(disjunction: Disjunction) -> "Conjunction":
        return Conjunction([disjunction])

    @property
    def conjuncts(self) -> Tuple[Disjunction, ...]:
        return self._conjuncts

    def and_also(self, disjunction: Disjunction) -> "Conjunction":
        return Conjunction(self._conjuncts + (disjunction,))

    def size(self) -> int:
        return sum(d.size() for d in self._conjuncts)

    def choices(self) -> Iterator[Tuple[Atom, ...]]:
        """Iterate over all ways of picking one atom from each conjunct.

        This is the nondeterministic guess ``π`` in the NP emptiness
        algorithm of Theorem 3.10 — exponential in general, which is the
        point.
        """

        def rec(index: int, picked: Tuple[Atom, ...]) -> Iterator[Tuple[Atom, ...]]:
            if index == len(self._conjuncts):
                yield picked
                return
            for atom in self._conjuncts[index]:
                yield from rec(index + 1, picked + (atom,))

        return rec(0, ())

    def __iter__(self) -> Iterator[Disjunction]:
        return iter(self._conjuncts)

    def __len__(self) -> int:
        return len(self._conjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._conjuncts == other._conjuncts

    def __hash__(self) -> int:
        return hash(self._conjuncts)

    def __repr__(self) -> str:
        return " & ".join(f"({d!r})" for d in self._conjuncts)


_LEAF = Atom()


def _meet_raw(a: Mult, b: Mult) -> Optional[Mult]:
    min_count = max(a.min_count, b.min_count)
    maxima = [m.max_count for m in (a, b) if m.max_count is not None]
    max_count = min(maxima) if maxima else None
    return _from_bounds(min_count, max_count)


_MEET = {(a, b): _meet_raw(a, b) for a in Mult for b in Mult}
