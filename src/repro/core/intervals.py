"""Exact interval algebra over the rationals.

Lemma 2.3 of the paper states that every selection condition is
equivalent to a union of intervals that is linear in the size of the
condition.  This module is that lemma made executable: an
:class:`IntervalSet` is a canonical finite union of disjoint,
non-adjacent rational intervals with open/closed endpoints (and
``±infinity`` ends), closed under union, intersection and complement.

Canonical form guarantees that two interval sets describe the same set
of rationals iff they are equal as Python objects, which gives us exact
satisfiability, implication and equivalence tests for conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence, Tuple

# Endpoints are either a Fraction or None (None = the infinity on that side).
Endpoint = Optional[Fraction]


@dataclass(frozen=True)
class Interval:
    """A single rational interval.

    ``low is None`` means unbounded below (-inf); ``high is None`` means
    unbounded above (+inf).  ``low_closed``/``high_closed`` are ignored on
    an unbounded side.  The empty interval is not representable; construct
    only non-empty intervals (checked).
    """

    low: Endpoint
    high: Endpoint
    low_closed: bool
    high_closed: bool

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None:
            if self.low > self.high:
                raise ValueError(f"empty interval: {self}")
            if self.low == self.high and not (self.low_closed and self.high_closed):
                raise ValueError(f"empty interval: {self}")

    # -- queries -----------------------------------------------------------

    def contains(self, value: Fraction) -> bool:
        """Membership test for a rational value."""
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_closed:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_closed:
                return False
        return True

    def is_point(self) -> bool:
        """True iff the interval is a single value ``[v, v]``."""
        return self.low is not None and self.low == self.high

    def sample(self) -> Fraction:
        """Some rational inside the interval (density of Q makes this easy)."""
        if self.low is None and self.high is None:
            return Fraction(0)
        if self.low is None:
            assert self.high is not None
            return self.high - 1 if not self.high_closed else self.high
        if self.high is None:
            return self.low + 1 if not self.low_closed else self.low
        if self.low_closed:
            return self.low
        if self.high_closed:
            return self.high
        return (self.low + self.high) / 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo = "(-inf" if self.low is None else ("[" if self.low_closed else "(") + str(self.low)
        hi = "+inf)" if self.high is None else str(self.high) + ("]" if self.high_closed else ")")
        return f"{lo}, {hi}"


def point(value: Fraction) -> Interval:
    """The singleton interval ``[value, value]``."""
    return Interval(value, value, True, True)


def _before(a: Interval, b: Interval) -> bool:
    """True when ``a`` ends strictly before ``b`` starts, with a gap
    (so they can appear consecutively in canonical form)."""
    if a.high is None or b.low is None:
        return False
    if a.high < b.low:
        return True
    if a.high == b.low:
        # adjacent; they merge unless both endpoints are open (gap of one point)
        return not a.high_closed and not b.low_closed
    return False


def _overlap_or_touch(a: Interval, b: Interval) -> bool:
    """True when ``a`` and ``b`` can be merged into one interval."""
    # Order so a starts first (None = -inf starts first).
    def starts_before(x: Interval, y: Interval) -> bool:
        if x.low is None:
            return True
        if y.low is None:
            return False
        if x.low != y.low:
            return x.low < y.low
        return x.low_closed and not y.low_closed

    first, second = (a, b) if starts_before(a, b) else (b, a)
    if first.high is None:
        return True
    if second.low is None:
        return True
    if first.high > second.low:
        return True
    if first.high == second.low:
        return first.high_closed or second.low_closed
    return False


def _merge(a: Interval, b: Interval) -> Interval:
    """Union of two overlapping-or-touching intervals."""
    if a.low is None or b.low is None:
        low, low_closed = None, False
    elif a.low < b.low:
        low, low_closed = a.low, a.low_closed
    elif b.low < a.low:
        low, low_closed = b.low, b.low_closed
    else:
        low, low_closed = a.low, a.low_closed or b.low_closed
    if a.high is None or b.high is None:
        high, high_closed = None, False
    elif a.high > b.high:
        high, high_closed = a.high, a.high_closed
    elif b.high > a.high:
        high, high_closed = b.high, b.high_closed
    else:
        high, high_closed = a.high, a.high_closed or b.high_closed
    return Interval(low, high, low_closed, high_closed)


def _intersect(a: Interval, b: Interval) -> Optional[Interval]:
    """Intersection of two intervals, or None when disjoint."""
    if a.low is None:
        low, low_closed = b.low, b.low_closed
    elif b.low is None:
        low, low_closed = a.low, a.low_closed
    elif a.low > b.low:
        low, low_closed = a.low, a.low_closed
    elif b.low > a.low:
        low, low_closed = b.low, b.low_closed
    else:
        low, low_closed = a.low, a.low_closed and b.low_closed
    if a.high is None:
        high, high_closed = b.high, b.high_closed
    elif b.high is None:
        high, high_closed = a.high, a.high_closed
    elif a.high < b.high:
        high, high_closed = a.high, a.high_closed
    elif b.high < a.high:
        high, high_closed = b.high, b.high_closed
    else:
        high, high_closed = a.high, a.high_closed and b.high_closed
    if low is not None and high is not None:
        if low > high:
            return None
        if low == high and not (low_closed and high_closed):
            return None
    return Interval(low, high, low_closed, high_closed)


class IntervalSet:
    """A canonical finite union of disjoint rational intervals.

    Immutable.  Equality is structural and, thanks to canonicalization,
    coincides with set equality over Q.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: Tuple[Interval, ...] = _canonicalize(list(intervals))

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty() -> "IntervalSet":
        """The empty set of rationals."""
        return _EMPTY

    @staticmethod
    def all() -> "IntervalSet":
        """All of Q."""
        return _ALL

    @staticmethod
    def singleton(value: Fraction) -> "IntervalSet":
        """The set ``{value}``."""
        return IntervalSet([point(value)])

    @staticmethod
    def comparison(op: str, value: Fraction) -> "IntervalSet":
        """The rationals satisfying ``x <op> value``.

        ``op`` is one of ``= != < <= > >=``.
        """
        if op == "=":
            return IntervalSet.singleton(value)
        if op == "!=":
            return IntervalSet(
                [Interval(None, value, False, False), Interval(value, None, False, False)]
            )
        if op == "<":
            return IntervalSet([Interval(None, value, False, False)])
        if op == "<=":
            return IntervalSet([Interval(None, value, False, True)])
        if op == ">":
            return IntervalSet([Interval(value, None, False, False)])
        if op == ">=":
            return IntervalSet([Interval(value, None, True, False)])
        raise ValueError(f"unknown comparison operator: {op!r}")

    # -- queries --------------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The canonical, sorted, disjoint intervals."""
        return self._intervals

    def is_empty(self) -> bool:
        return not self._intervals

    def is_all(self) -> bool:
        if len(self._intervals) != 1:
            return False
        only = self._intervals[0]
        return only.low is None and only.high is None

    def contains(self, value: Fraction) -> bool:
        return any(iv.contains(value) for iv in self._intervals)

    def is_singleton(self) -> Optional[Fraction]:
        """The unique member when this set is a single point, else None."""
        if len(self._intervals) == 1 and self._intervals[0].is_point():
            return self._intervals[0].low
        return None

    def sample(self) -> Fraction:
        """Some member; raises ValueError on the empty set."""
        if not self._intervals:
            raise ValueError("cannot sample from the empty interval set")
        return self._intervals[0].sample()

    def samples(self, limit: int = 4) -> Iterator[Fraction]:
        """Up to ``limit`` distinct members, spread across the intervals.

        Used by the enumeration oracle to pick representative data values
        (one value per interval of the decomposition suffices, per the
        proof of Lemma 2.3).
        """
        produced = 0
        for iv in self._intervals:
            if produced >= limit:
                return
            yield iv.sample()
            produced += 1
            # for wide intervals also yield a second witness
            if produced < limit and not iv.is_point():
                second = _second_sample(iv)
                if second is not None:
                    yield second
                    produced += 1

    # -- algebra ---------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self._intervals) + list(other._intervals))

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = []
        for a in self._intervals:
            for b in other._intervals:
                piece = _intersect(a, b)
                if piece is not None:
                    pieces.append(piece)
        return IntervalSet(pieces)

    def complement(self) -> "IntervalSet":
        result = [Interval(None, None, False, False)]
        for iv in self._intervals:
            new_result = []
            for r in result:
                new_result.extend(_subtract(r, iv))
            result = new_result
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other.complement())

    def implies(self, other: "IntervalSet") -> bool:
        """Subset test: every member of self is in other."""
        return self.difference(other).is_empty()

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._intervals:
            return "IntervalSet(empty)"
        return "IntervalSet(" + " u ".join(repr(iv) for iv in self._intervals) + ")"


def _second_sample(iv: Interval) -> Optional[Fraction]:
    """A second distinct witness inside a non-point interval, if easy."""
    first = iv.sample()
    if iv.high is None:
        return first + 1
    if iv.low is None:
        return first - 1
    candidate = (first + iv.high) / 2
    if candidate != first and iv.contains(candidate):
        return candidate
    return None


def _subtract(a: Interval, b: Interval) -> Sequence[Interval]:
    """``a`` minus ``b`` as 0, 1 or 2 intervals."""
    inter = _intersect(a, b)
    if inter is None:
        return [a]
    pieces = []
    if inter.low is not None and (a.low is None or a.low < inter.low or (a.low == inter.low and a.low_closed and not inter.low_closed)):
        pieces.append(Interval(a.low, inter.low, a.low_closed, not inter.low_closed))
    if inter.high is not None and (a.high is None or a.high > inter.high or (a.high == inter.high and a.high_closed and not inter.high_closed)):
        pieces.append(Interval(inter.high, a.high, not inter.high_closed, a.high_closed))
    return pieces


def _sort_key(iv: Interval):
    low = iv.low
    # -inf first; at the same low value, closed endpoint starts earlier
    return (
        0 if low is None else 1,
        low if low is not None else Fraction(0),
        0 if iv.low_closed else 1,
    )


def _canonicalize(intervals: list) -> Tuple[Interval, ...]:
    if not intervals:
        return ()
    intervals.sort(key=_sort_key)
    merged = [intervals[0]]
    for iv in intervals[1:]:
        if _overlap_or_touch(merged[-1], iv):
            merged[-1] = _merge(merged[-1], iv)
        else:
            merged.append(iv)
    return tuple(merged)


_EMPTY = IntervalSet.__new__(IntervalSet)
_EMPTY._intervals = ()
_ALL = IntervalSet.__new__(IntervalSet)
_ALL._intervals = (Interval(None, None, False, False),)
