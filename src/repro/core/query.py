"""Prefix-selection queries (ps-queries, paper Section 2).

A ps-query is a tree pattern: every pattern node carries an element name
(possibly adorned with a bar, written here as ``extract=True``) and a
selection condition on data values.  Internal pattern nodes must carry
plain labels, and no two sibling pattern nodes may use the same element
name (with or without bar).

Semantics (the paper's valuations): a valuation maps the *whole* pattern
into the input tree — root to root, edges to edges, labels and
conditions respected.  The answer ``q(T)`` is the prefix of ``T``
consisting of every node in the image of *some* valuation, plus the full
subtrees below matched bar nodes.  If no valuation exists the answer is
the empty tree.

Because each branch of the pattern can be matched independently, a tree
node ``n`` is in the image of some valuation at pattern node ``m`` iff
the subpattern rooted at ``m`` fully matches at ``n`` and, recursively,
``n``'s parent is in the image at ``m``'s parent.  Evaluation runs in
time O(|q|·|T|·branching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .conditions import Cond
from .tree import DataTree, NodeId

#: A pattern node is addressed by its path of child indices from the root.
Path = Tuple[int, ...]


@dataclass(frozen=True)
class QueryNode:
    """One node of a ps-query pattern."""

    label: str
    cond: Cond = field(default_factory=Cond.true)
    extract: bool = False  # the paper's bar adornment: extract whole subtree
    children: Tuple["QueryNode", ...] = ()

    def __post_init__(self) -> None:
        if self.extract and self.children:
            raise ValueError("bar-labeled pattern nodes must be leaves")
        seen: Set[str] = set()
        for child in self.children:
            if child.label in seen:
                raise ValueError(
                    f"sibling pattern nodes share label {child.label!r} "
                    "(ps-queries forbid this; see extensions.branching)"
                )
            seen.add(child.label)


def pattern(
    label: str,
    cond: Optional[Cond] = None,
    children: Sequence[QueryNode] = (),
) -> QueryNode:
    """Build a plain pattern node."""
    return QueryNode(label, cond if cond is not None else Cond.true(), False, tuple(children))


def subtree(label: str, cond: Optional[Cond] = None) -> QueryNode:
    """Build a bar-labeled leaf: matched node's whole subtree is extracted."""
    return QueryNode(label, cond if cond is not None else Cond.true(), True, ())


class PSQuery:
    """An immutable prefix-selection query."""

    __slots__ = ("_root", "_paths")

    def __init__(self, root: QueryNode):
        self._root = root
        self._paths: Dict[Path, QueryNode] = {}
        self._index(root, ())

    def _index(self, node: QueryNode, path: Path) -> None:
        self._paths[path] = node
        for i, child in enumerate(node.children):
            self._index(child, path + (i,))

    # -- structure ----------------------------------------------------------

    @property
    def root(self) -> QueryNode:
        return self._root

    def paths(self) -> Iterator[Path]:
        """All pattern-node paths, shallow first."""
        return iter(sorted(self._paths, key=len))

    def node_at(self, path: Path) -> QueryNode:
        return self._paths[path]

    def parent_path(self, path: Path) -> Optional[Path]:
        return path[:-1] if path else None

    def subquery(self, path: Path) -> "PSQuery":
        """The ps-query rooted at the given pattern node."""
        return PSQuery(self._paths[path])

    def size(self) -> int:
        return len(self._paths)

    def depth(self) -> int:
        return 1 + max(len(path) for path in self._paths)

    def labels(self) -> Set[str]:
        return {node.label for node in self._paths.values()}

    def is_linear(self) -> bool:
        """Linear ps-queries (Lemma 3.12): a single path."""
        return all(len(node.children) <= 1 for node in self._paths.values())

    def has_bars(self) -> bool:
        return any(node.extract for node in self._paths.values())

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, tree: DataTree) -> DataTree:
        """``q(T)`` — the answer prefix (empty tree when no valuation)."""
        answer, _witness = self.evaluate_with_witness(tree)
        return answer

    def evaluate_with_witness(
        self, tree: DataTree
    ) -> Tuple[DataTree, Dict[NodeId, Path]]:
        """Evaluate and also report which pattern node matched each answer
        node.

        Descendants of bar-matched nodes are mapped to the bar node's
        path.  Used by the Refine machinery (Lemma 3.2) to reconstruct the
        answer/pattern correspondence.
        """
        if tree.is_empty():
            return DataTree.empty(), {}

        memo: Dict[Tuple[Path, NodeId], bool] = {}

        def full_match(path: Path, node_id: NodeId) -> bool:
            key = (path, node_id)
            if key in memo:
                return memo[key]
            qnode = self._paths[path]
            ok = qnode.label == tree.label(node_id) and qnode.cond.accepts(
                tree.value(node_id)
            )
            if ok:
                for i in range(len(qnode.children)):
                    child_path = path + (i,)
                    if not any(
                        full_match(child_path, child)
                        for child in tree.children(node_id)
                    ):
                        ok = False
                        break
            memo[key] = ok
            return ok

        if not full_match((), tree.root):
            return DataTree.empty(), {}

        witness: Dict[NodeId, Path] = {tree.root: ()}
        keep: Set[NodeId] = {tree.root}
        frontier: List[Tuple[Path, NodeId]] = [((), tree.root)]
        while frontier:
            path, node_id = frontier.pop()
            qnode = self._paths[path]
            if qnode.extract:
                for descendant in tree.descendants(node_id):
                    keep.add(descendant)
                    witness.setdefault(descendant, path)
                continue
            for i in range(len(qnode.children)):
                child_path = path + (i,)
                for child in tree.children(node_id):
                    if full_match(child_path, child):
                        keep.add(child)
                        witness.setdefault(child, child_path)
                        frontier.append((child_path, child))
        return tree.restrict(keep), witness

    def matches(self, tree: DataTree) -> bool:
        """Does at least one valuation exist (non-empty answer)?"""
        return not self.evaluate(tree).is_empty()

    # -- rendering ----------------------------------------------------------------

    def pretty(self) -> str:
        lines: List[str] = []

        def walk(node: QueryNode, indent: int) -> None:
            bar = "~" if node.extract else ""
            cond = "" if node.cond.is_true() else f" [{node.cond!r}]"
            lines.append("  " * indent + f"{bar}{node.label}{cond}")
            for child in node.children:
                walk(child, indent + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PSQuery):
            return NotImplemented
        return self._root == other._root

    def __hash__(self) -> int:
        return hash(self._root)

    def __repr__(self) -> str:
        return f"PSQuery({self._root.label!r}, {self.size()} nodes)"


def linear_query(
    labels: Sequence[str],
    conds: Optional[Sequence[Optional[Cond]]] = None,
    extract_last: bool = False,
) -> PSQuery:
    """Build a linear ps-query from a root-to-leaf label path."""
    if not labels:
        raise ValueError("a query needs at least one node")
    conds = conds if conds is not None else [None] * len(labels)
    if len(conds) != len(labels):
        raise ValueError("labels and conds must have the same length")
    current: Optional[QueryNode] = None
    for label, cond in zip(reversed(labels), reversed(list(conds))):
        if current is None:
            current = (
                subtree(label, cond) if extract_last else pattern(label, cond)
            )
        else:
            current = pattern(label, cond, [current])
    assert current is not None
    return PSQuery(current)
