"""Selection conditions on data values (paper Section 2, Lemma 2.3).

A condition is a Boolean combination of atomic comparisons ``= v``,
``!= v``, ``<= v``, ``>= v``, ``< v``, ``> v`` against constants.  Per
Lemma 2.3 every condition is equivalent to a union of intervals linear
in its size; we compute that normal form eagerly as a :class:`ValueSet`
(a pair of an :class:`~repro.core.intervals.IntervalSet` over Q and a
:class:`~repro.core.stringsets.StringSet`), which makes satisfiability,
implication and equivalence exact and cheap.

The public entry point is :class:`Cond`.  Instances are immutable and
carry both the syntax tree (for display) and the semantic value set.

>>> c = Cond.lt(200) & Cond.ne(100)
>>> c.satisfiable()
True
>>> c.accepts(150)
True
>>> c.accepts("elec")
False
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Optional, Tuple

from .intervals import IntervalSet
from .stringsets import StringSet
from .values import Value, ValueInput, as_value, is_numeric


class ValueSet:
    """The exact denotation of a condition: rationals plus strings."""

    __slots__ = ("numbers", "strings", "_hash")

    def __init__(self, numbers: IntervalSet, strings: StringSet):
        self.numbers = numbers
        self.strings = strings
        # hash is cached: denotations are the keys of every condition
        # memo/intern table and hashing an IntervalSet walks its cells
        self._hash: Optional[int] = None

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty() -> "ValueSet":
        return ValueSet(IntervalSet.empty(), StringSet.empty())

    @staticmethod
    def all() -> "ValueSet":
        return ValueSet(IntervalSet.all(), StringSet.all())

    @staticmethod
    def singleton(value: Value) -> "ValueSet":
        if is_numeric(value):
            return ValueSet(IntervalSet.singleton(value), StringSet.empty())
        return ValueSet(IntervalSet.empty(), StringSet.singleton(value))

    @staticmethod
    def atom(op: str, value: Value) -> "ValueSet":
        """Denotation of the atomic comparison ``x <op> value``."""
        if is_numeric(value):
            numbers = IntervalSet.comparison(op, value)
            # A string never satisfies a numeric comparison except "!=".
            strings = StringSet.all() if op == "!=" else StringSet.empty()
            return ValueSet(numbers, strings)
        if op == "=":
            return ValueSet(IntervalSet.empty(), StringSet.singleton(value))
        if op == "!=":
            return ValueSet(IntervalSet.all(), StringSet.excluding([value]))
        # Order comparisons against string constants hold for no value: the
        # paper's domain is Q, and we refuse to invent an order on strings.
        return ValueSet.empty()

    # -- algebra -------------------------------------------------------------

    def union(self, other: "ValueSet") -> "ValueSet":
        return ValueSet(self.numbers.union(other.numbers), self.strings.union(other.strings))

    def intersect(self, other: "ValueSet") -> "ValueSet":
        return ValueSet(
            self.numbers.intersect(other.numbers), self.strings.intersect(other.strings)
        )

    def complement(self) -> "ValueSet":
        return ValueSet(self.numbers.complement(), self.strings.complement())

    def difference(self, other: "ValueSet") -> "ValueSet":
        return self.intersect(other.complement())

    # -- queries -----------------------------------------------------------------

    def is_empty(self) -> bool:
        return self.numbers.is_empty() and self.strings.is_empty()

    def is_all(self) -> bool:
        return self.numbers.is_all() and self.strings.is_all()

    def contains(self, value: Value) -> bool:
        if is_numeric(value):
            return self.numbers.contains(value)
        return self.strings.contains(value)

    def is_singleton(self) -> Optional[Value]:
        """The unique member when this set is a single value, else None."""
        number = self.numbers.is_singleton()
        string = self.strings.is_singleton()
        if number is not None and self.strings.is_empty():
            return number
        if string is not None and self.numbers.is_empty():
            return string
        return None

    def implies(self, other: "ValueSet") -> bool:
        return self.numbers.implies(other.numbers) and self.strings.implies(other.strings)

    def sample(self) -> Value:
        """Some member; raises ValueError on the empty set."""
        if not self.numbers.is_empty():
            return self.numbers.sample()
        return self.strings.sample()

    def samples(self, limit: int = 4) -> Iterator[Value]:
        """Up to ``limit`` representative members (numbers first)."""
        produced = 0
        for number in self.numbers.samples(limit):
            yield number
            produced += 1
            if produced >= limit:
                return
        for string in self.strings.samples(limit - produced):
            yield string
            produced += 1
            if produced >= limit:
                return

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueSet):
            return NotImplemented
        return self.numbers == other.numbers and self.strings == other.strings

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.numbers, self.strings))
            self._hash = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueSet({self.numbers!r}, {self.strings!r})"


_OPS = ("=", "!=", "<", "<=", ">", ">=")
_NEGATED = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Cond:
    """An immutable selection condition.

    Build with the factory classmethods (:meth:`eq`, :meth:`lt`, ...) and
    combine with ``&``, ``|`` and ``~``.  ``Cond.true()`` / ``Cond.false()``
    are the Boolean constants.  Semantics are precomputed as a
    :class:`ValueSet`; two conditions with the same denotation compare
    equal under :meth:`equivalent` (but not necessarily under ``==``,
    which is syntactic identity of the denotation — see below).

    Equality/hash are by *denotation*: conditions are used as dictionary
    keys in type representations where semantic identity is what matters.
    """

    __slots__ = ("_values", "_text")

    def __init__(self, values: ValueSet, text: str):
        self._values = values
        self._text = text

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def true() -> "Cond":
        return _TRUE

    @staticmethod
    def false() -> "Cond":
        return _FALSE

    @staticmethod
    def atom(op: str, raw: ValueInput) -> "Cond":
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}; expected one of {_OPS}")
        value = as_value(raw)
        return Cond(ValueSet.atom(op, value), f"{op} {_fmt(value)}")

    @staticmethod
    def eq(raw: ValueInput) -> "Cond":
        """``= v``"""
        return Cond.atom("=", raw)

    @staticmethod
    def ne(raw: ValueInput) -> "Cond":
        """``!= v``"""
        return Cond.atom("!=", raw)

    @staticmethod
    def lt(raw: ValueInput) -> "Cond":
        """``< v``"""
        return Cond.atom("<", raw)

    @staticmethod
    def le(raw: ValueInput) -> "Cond":
        """``<= v``"""
        return Cond.atom("<=", raw)

    @staticmethod
    def gt(raw: ValueInput) -> "Cond":
        """``> v``"""
        return Cond.atom(">", raw)

    @staticmethod
    def ge(raw: ValueInput) -> "Cond":
        """``>= v``"""
        return Cond.atom(">=", raw)

    @staticmethod
    def of(values: ValueSet, text: Optional[str] = None) -> "Cond":
        """Wrap an explicit denotation (used by internal constructions)."""
        return Cond(values, text if text is not None else "<set>")

    @staticmethod
    def one_of(*raws: ValueInput) -> "Cond":
        """Disjunction of equalities."""
        result = Cond.false()
        for raw in raws:
            result = result | Cond.eq(raw)
        return result

    # -- combinators -------------------------------------------------------------

    def __and__(self, other: "Cond") -> "Cond":
        values = self._values.intersect(other._values)
        return Cond(values, _combine(self, other, "and"))

    def __or__(self, other: "Cond") -> "Cond":
        values = self._values.union(other._values)
        return Cond(values, _combine(self, other, "or"))

    def __invert__(self) -> "Cond":
        return Cond(self._values.complement(), f"not({self._text})")

    # -- queries -----------------------------------------------------------------

    @property
    def values(self) -> ValueSet:
        """The exact denotation."""
        return self._values

    def satisfiable(self) -> bool:
        """Lemma 2.3: PTIME satisfiability."""
        return not self._values.is_empty()

    def is_true(self) -> bool:
        return self._values.is_all()

    def accepts(self, raw: ValueInput) -> bool:
        """Does the given value satisfy this condition?"""
        return self._values.contains(as_value(raw))

    def implies(self, other: "Cond") -> bool:
        return self._values.implies(other._values)

    def equivalent(self, other: "Cond") -> bool:
        return self._values == other._values

    def forced_value(self) -> Optional[Value]:
        """The unique satisfying value, if the condition pins one down.

        This is the paper's ``cond(a) = v`` test used in Theorem 2.8.
        """
        return self._values.is_singleton()

    def sample(self) -> Value:
        """Some satisfying value; raises ValueError when unsatisfiable."""
        return self._values.sample()

    def samples(self, limit: int = 4) -> Iterator[Value]:
        return self._values.samples(limit)

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, Cond):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        if self._values.is_all():
            return "true"
        if self._values.is_empty():
            return "false"
        return self._text


def _fmt(value: Value) -> str:
    if isinstance(value, str):
        return repr(value)
    if value.denominator == 1:
        return str(value.numerator)
    return str(value)


def _combine(left: Cond, right: Cond, word: str) -> str:
    return f"({left!r} {word} {right!r})"


def interval_partition(conds: Tuple[Cond, ...]) -> Tuple[ValueSet, ...]:
    """Partition the value domain by a family of conditions.

    Returns the non-empty cells of the partition generated by the
    denotations of ``conds`` (each cell is a maximal region on which every
    condition is constantly true or constantly false).  This is the
    workhorse behind Lemma 3.12's linear-query construction and the
    enumeration oracle's representative-value selection.
    """
    cells = [ValueSet.all()]
    for cond in conds:
        inside = cond.values
        outside = inside.complement()
        next_cells = []
        for cell in cells:
            kept = cell.intersect(inside)
            if not kept.is_empty():
                next_cells.append(kept)
            dropped = cell.intersect(outside)
            if not dropped.is_empty():
                next_cells.append(dropped)
        cells = next_cells
    return tuple(cells)


_TRUE = Cond(ValueSet.all(), "true")
_FALSE = Cond(ValueSet.empty(), "false")
