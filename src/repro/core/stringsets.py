"""Finite/cofinite sets of strings.

Conditions only ever compare string values with ``=`` and ``!=`` (order
comparisons live in the rational sort), so the string component of any
condition denotes either a finite set of strings or the complement of
one.  Both are exactly representable, closed under the Boolean algebra,
and admit fresh-witness sampling — everything the condition machinery
needs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional


class StringSet:
    """A finite or cofinite set of strings (immutable, canonical)."""

    __slots__ = ("_members", "_cofinite")

    def __init__(self, members: Iterable[str] = (), cofinite: bool = False):
        self._members: FrozenSet[str] = frozenset(members)
        self._cofinite = bool(cofinite)

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def empty() -> "StringSet":
        return _EMPTY

    @staticmethod
    def all() -> "StringSet":
        return _ALL

    @staticmethod
    def singleton(value: str) -> "StringSet":
        return StringSet([value])

    @staticmethod
    def excluding(values: Iterable[str]) -> "StringSet":
        """All strings except ``values``."""
        return StringSet(values, cofinite=True)

    # -- queries ----------------------------------------------------------------

    @property
    def is_cofinite(self) -> bool:
        return self._cofinite

    @property
    def members(self) -> FrozenSet[str]:
        """The explicit members (finite case) or exclusions (cofinite case)."""
        return self._members

    def is_empty(self) -> bool:
        return not self._cofinite and not self._members

    def is_all(self) -> bool:
        return self._cofinite and not self._members

    def contains(self, value: str) -> bool:
        if self._cofinite:
            return value not in self._members
        return value in self._members

    def is_singleton(self) -> Optional[str]:
        """The unique member when the set has exactly one, else None."""
        if not self._cofinite and len(self._members) == 1:
            return next(iter(self._members))
        return None

    def sample(self) -> str:
        """Some member; raises ValueError on the empty set."""
        if self._cofinite:
            return _fresh(self._members)
        if not self._members:
            raise ValueError("cannot sample from the empty string set")
        return min(self._members)

    def samples(self, limit: int = 4) -> Iterator[str]:
        """Up to ``limit`` distinct members."""
        if self._cofinite:
            produced = 0
            banned = set(self._members)
            while produced < limit:
                fresh = _fresh(banned)
                banned.add(fresh)
                yield fresh
                produced += 1
        else:
            for value in sorted(self._members)[:limit]:
                yield value

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "StringSet") -> "StringSet":
        if self._cofinite and other._cofinite:
            return StringSet(self._members & other._members, cofinite=True)
        if self._cofinite:
            return StringSet(self._members - other._members, cofinite=True)
        if other._cofinite:
            return StringSet(other._members - self._members, cofinite=True)
        return StringSet(self._members | other._members)

    def intersect(self, other: "StringSet") -> "StringSet":
        if self._cofinite and other._cofinite:
            return StringSet(self._members | other._members, cofinite=True)
        if self._cofinite:
            return StringSet(other._members - self._members)
        if other._cofinite:
            return StringSet(self._members - other._members)
        return StringSet(self._members & other._members)

    def complement(self) -> "StringSet":
        return StringSet(self._members, cofinite=not self._cofinite)

    def difference(self, other: "StringSet") -> "StringSet":
        return self.intersect(other.complement())

    def implies(self, other: "StringSet") -> bool:
        """Subset test."""
        return self.difference(other).is_empty()

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringSet):
            return NotImplemented
        return self._cofinite == other._cofinite and self._members == other._members

    def __hash__(self) -> int:
        return hash((self._cofinite, self._members))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = "{" + ", ".join(sorted(self._members)) + "}"
        return f"StringSet(all - {inner})" if self._cofinite else f"StringSet({inner})"


def _fresh(banned: Iterable[str]) -> str:
    """A string not in ``banned`` (deterministic)."""
    banned_set = set(banned)
    index = 0
    while True:
        candidate = f"_str{index}"
        if candidate not in banned_set:
            return candidate
        index += 1


_EMPTY = StringSet()
_ALL = StringSet(cofinite=True)
