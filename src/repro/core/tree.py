"""Data trees (paper Definition 2.1).

A data tree is a finite rooted unordered tree whose nodes carry a label
from the element-name alphabet Σ and a data value, and — crucially for
the whole framework — a *persistent node identifier* (Remark 2.4).
Identifiers let answers to consecutive queries be merged node-by-node.

Example 2.2 needs the *empty* tree to be a possible query answer, so a
:class:`DataTree` may have no nodes at all.

Trees are immutable; construct them with :func:`node` /
:meth:`DataTree.build`, or grow new trees with the ``with_*``
functional-update helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .matching import has_perfect_matching
from .values import Value, ValueInput, as_value, value_repr

NodeId = str


@dataclass(frozen=True)
class NodeSpec:
    """A node description used to build trees: id, label, value, children."""

    id: NodeId
    label: str
    value: Value
    children: Tuple["NodeSpec", ...] = ()


def node(
    node_id: NodeId,
    label: str,
    value: ValueInput = 0,
    children: Sequence[NodeSpec] = (),
) -> NodeSpec:
    """Build a :class:`NodeSpec` (values are normalized via ``as_value``)."""
    return NodeSpec(node_id, label, as_value(value), tuple(children))


@dataclass(frozen=True)
class _Record:
    label: str
    value: Value
    parent: Optional[NodeId]
    children: Tuple[NodeId, ...]


class DataTree:
    """An immutable unordered data tree with persistent node ids."""

    __slots__ = ("_root", "_nodes")

    def __init__(self, root: Optional[NodeId], nodes: Mapping[NodeId, _Record]):
        self._root = root
        self._nodes: Dict[NodeId, _Record] = dict(nodes)
        if root is not None and root not in self._nodes:
            raise ValueError(f"root {root!r} not among the nodes")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "DataTree":
        """The empty tree (a legitimate query answer, see Example 2.2)."""
        return _EMPTY

    @staticmethod
    def build(spec: Optional[NodeSpec]) -> "DataTree":
        """Build from a nested :func:`node` spec; None gives the empty tree."""
        if spec is None:
            return DataTree.empty()
        nodes: Dict[NodeId, _Record] = {}

        def walk(current: NodeSpec, parent: Optional[NodeId]) -> None:
            if current.id in nodes:
                raise ValueError(f"duplicate node id {current.id!r}")
            nodes[current.id] = _Record(
                current.label,
                current.value,
                parent,
                tuple(child.id for child in current.children),
            )
            for child in current.children:
                walk(child, current.id)

        walk(spec, None)
        return DataTree(spec.id, nodes)

    @staticmethod
    def single(node_id: NodeId, label: str, value: ValueInput = 0) -> "DataTree":
        """A one-node tree."""
        return DataTree.build(node(node_id, label, value))

    # -- basic queries --------------------------------------------------------

    def is_empty(self) -> bool:
        return self._root is None

    @property
    def root(self) -> NodeId:
        if self._root is None:
            raise ValueError("the empty tree has no root")
        return self._root

    @property
    def root_or_none(self) -> Optional[NodeId]:
        return self._root

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> Iterator[NodeId]:
        """All node ids, in a deterministic pre-order."""
        if self._root is None:
            return
        stack: List[NodeId] = [self._root]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self._nodes[current].children))

    def label(self, node_id: NodeId) -> str:
        return self._nodes[node_id].label

    def value(self, node_id: NodeId) -> Value:
        return self._nodes[node_id].value

    def parent(self, node_id: NodeId) -> Optional[NodeId]:
        return self._nodes[node_id].parent

    def children(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        return self._nodes[node_id].children

    def labels(self) -> Set[str]:
        """The set of labels appearing in the tree."""
        return {record.label for record in self._nodes.values()}

    def depth(self) -> int:
        """Number of levels (0 for the empty tree)."""
        if self._root is None:
            return 0

        def rec(node_id: NodeId) -> int:
            kids = self._nodes[node_id].children
            return 1 + (max(rec(k) for k in kids) if kids else 0)

        return rec(self._root)

    def descendants(self, node_id: NodeId) -> Iterator[NodeId]:
        """``node_id`` and everything below it, pre-order."""
        stack = [node_id]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(reversed(self._nodes[current].children))

    def path_to(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """Root-to-node id path."""
        path: List[NodeId] = []
        current: Optional[NodeId] = node_id
        while current is not None:
            path.append(current)
            current = self._nodes[current].parent
        path.reverse()
        return tuple(path)

    # -- derived trees ------------------------------------------------------------

    def subtree(self, node_id: NodeId) -> "DataTree":
        """The subtree rooted at ``node_id`` as a standalone tree."""
        nodes = {}
        for descendant in self.descendants(node_id):
            record = self._nodes[descendant]
            parent = None if descendant == node_id else record.parent
            nodes[descendant] = _Record(record.label, record.value, parent, record.children)
        return DataTree(node_id, nodes)

    def restrict(self, keep: Iterable[NodeId]) -> "DataTree":
        """The prefix consisting of the kept nodes (must be closed upward,
        i.e. include the parent of every kept non-root node).

        Returns the empty tree when the root is not kept.
        """
        keep_set = set(keep)
        if self._root is None or self._root not in keep_set:
            if any(node_id in self._nodes for node_id in keep_set):
                for node_id in keep_set:
                    if node_id in self._nodes:
                        raise ValueError(
                            "restrict: kept nodes must include the root to be a prefix"
                        )
            return DataTree.empty()
        nodes = {}
        for node_id in keep_set:
            if node_id not in self._nodes:
                raise KeyError(f"unknown node {node_id!r}")
            record = self._nodes[node_id]
            if record.parent is not None and record.parent not in keep_set:
                raise ValueError(f"restrict: parent of {node_id!r} not kept")
            nodes[node_id] = _Record(
                record.label,
                record.value,
                record.parent,
                tuple(child for child in record.children if child in keep_set),
            )
        return DataTree(self._root, nodes)

    def with_subtree(self, parent_id: NodeId, spec: NodeSpec) -> "DataTree":
        """A new tree with ``spec`` grafted under ``parent_id``."""
        if parent_id not in self._nodes:
            raise KeyError(f"unknown node {parent_id!r}")
        addition = DataTree.build(spec)
        nodes = dict(self._nodes)
        for new_id in addition.node_ids():
            if new_id in nodes:
                raise ValueError(f"node id {new_id!r} already present")
        for new_id in addition.node_ids():
            record = addition._nodes[new_id]
            parent = record.parent if record.parent is not None else parent_id
            nodes[new_id] = _Record(record.label, record.value, parent, record.children)
        old = nodes[parent_id]
        nodes[parent_id] = _Record(
            old.label, old.value, old.parent, old.children + (spec.id,)
        )
        return DataTree(self._root, nodes)

    def merged_with(self, other: "DataTree") -> "DataTree":
        """Union of two trees that agree on shared node ids (Remark 2.4).

        Both trees must be prefixes of a common tree: shared ids must have
        identical label, value and parent; the roots must coincide (unless
        one tree is empty).
        """
        if self._root is None:
            return other
        if other._root is None:
            return self
        if self._root != other._root:
            raise ValueError("cannot merge trees with different roots")
        nodes: Dict[NodeId, _Record] = {}
        ids = set(self._nodes) | set(other._nodes)
        for node_id in ids:
            mine = self._nodes.get(node_id)
            theirs = other._nodes.get(node_id)
            if mine is not None and theirs is not None:
                if (
                    mine.label != theirs.label
                    or mine.value != theirs.value
                    or mine.parent != theirs.parent
                ):
                    raise ValueError(f"incompatible data for shared node {node_id!r}")
                children = tuple(
                    dict.fromkeys(mine.children + theirs.children)
                )
                nodes[node_id] = _Record(mine.label, mine.value, mine.parent, children)
            else:
                nodes[node_id] = mine if mine is not None else theirs  # type: ignore[assignment]
        return DataTree(self._root, nodes)

    # -- prefix relation (paper Section 2) -------------------------------------------

    def is_prefix_of(
        self, other: "DataTree", relative_to: Iterable[NodeId] = ()
    ) -> bool:
        """The paper's prefix relation: does ``self`` embed into ``other``?

        There must be an injective mapping h from self's nodes to other's
        nodes that is the identity on ``relative_to``, maps root to root,
        preserves the parent relation, labels and data values.
        """
        anchored = set(relative_to)
        if self._root is None:
            return True
        if other._root is None:
            return False

        memo: Dict[Tuple[NodeId, NodeId], bool] = {}

        def embeds(mine: NodeId, theirs: NodeId) -> bool:
            key = (mine, theirs)
            if key in memo:
                return memo[key]
            memo[key] = False  # guard against (impossible) cycles
            my_record = self._nodes[mine]
            their_record = other._nodes[theirs]
            ok = (
                my_record.label == their_record.label
                and my_record.value == their_record.value
                and (mine not in anchored or mine == theirs)
            )
            if ok and my_record.children:
                adjacency = {
                    child: [
                        candidate
                        for candidate in their_record.children
                        if embeds(child, candidate)
                    ]
                    for child in my_record.children
                }
                ok = has_perfect_matching(list(my_record.children), adjacency)
            memo[key] = ok
            return ok

        return embeds(self._root, other._root)

    def isomorphic_to(self, other: "DataTree") -> bool:
        """Equality up to node identifiers (labels, values, shape)."""
        return (
            len(self) == len(other)
            and self.is_prefix_of(other)
            and other.is_prefix_of(self)
        )

    # -- rendering ------------------------------------------------------------------

    def pretty(self, show_values: bool = True) -> str:
        """Indented textual rendering (used in examples and error messages)."""
        if self._root is None:
            return "(empty tree)"
        lines: List[str] = []

        def walk(node_id: NodeId, indent: int) -> None:
            record = self._nodes[node_id]
            value = f" = {value_repr(record.value)}" if show_values else ""
            lines.append("  " * indent + f"{record.label}[{node_id}]{value}")
            for child in record.children:
                walk(child, indent + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataTree):
            return NotImplemented
        if self._root != other._root or set(self._nodes) != set(other._nodes):
            return False
        for node_id, record in self._nodes.items():
            theirs = other._nodes[node_id]
            if (
                record.label != theirs.label
                or record.value != theirs.value
                or record.parent != theirs.parent
                or set(record.children) != set(theirs.children)
            ):
                return False
        return True

    def __hash__(self) -> int:
        return hash(
            (
                self._root,
                frozenset(
                    (node_id, record.label, record.value, record.parent)
                    for node_id, record in self._nodes.items()
                ),
            )
        )

    def __repr__(self) -> str:
        if self._root is None:
            return "DataTree(empty)"
        return f"DataTree(root={self._root!r}, {len(self._nodes)} nodes)"


_EMPTY = DataTree(None, {})


class IdFactory:
    """Deterministic fresh node-id generator (``n0``, ``n1``, ...).

    The representation machinery frequently needs ids that do not collide
    with existing ones; instances of this class hand them out.
    """

    def __init__(self, prefix: str = "n", taken: Iterable[NodeId] = ()):
        self._prefix = prefix
        self._taken = set(taken)
        self._counter = 0

    def fresh(self) -> NodeId:
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    def reserve(self, node_id: NodeId) -> None:
        self._taken.add(node_id)
