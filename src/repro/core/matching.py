"""Bipartite matching and bounded assignment.

Two combinatorial subroutines the typing algorithms lean on:

* :func:`max_bipartite_matching` / :func:`has_perfect_matching` — the
  perfect matchings used by the Cert/Poss recursions of Theorem 2.8;
* :func:`feasible_assignment` — assign every item to an allowed slot
  subject to per-slot (min, max) count bounds.  This decides whether a
  child multiset satisfies a multiplicity atom, the core step of
  membership checking for (conditional) tree types.  Implemented as a
  max-flow with lower bounds via the standard excess transformation,
  on top of a small Dinic solver.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..obs.state import STATE as _OBS
from ..perf.memo import MISS as _MISS
from ..perf.state import STATE as _PERF

Node = Hashable

_INF = float("inf")


def _shape_key(
    items: Sequence[Node], allowed: Mapping[Node, Iterable[Node]]
) -> Tuple[Tuple[Node, Tuple[Node, ...]], ...]:
    """The (item, partners) shape that determines a matching exactly.

    Both solvers below are deterministic functions of the item order and
    each item's partner order, so this tuple is a sound memo key for
    repeated (tree, type) shapes — the same children matched against the
    same atoms on every prefix/membership check.
    """
    return tuple((item, tuple(allowed.get(item, ()))) for item in items)


class Dinic:
    """Dinic's max-flow on an integer-capacity directed graph."""

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self._graph: List[List[int]] = []  # adjacency: node -> edge ids
        self._to: List[int] = []
        self._cap: List[float] = []

    def _node(self, name: Node) -> int:
        if name not in self._index:
            self._index[name] = len(self._graph)
            self._graph.append([])
        return self._index[name]

    def add_edge(self, source: Node, target: Node, capacity: float) -> int:
        """Add an edge; returns its id (for flow readback)."""
        u, v = self._node(source), self._node(target)
        edge_id = len(self._to)
        self._graph[u].append(edge_id)
        self._to.append(v)
        self._cap.append(capacity)
        self._graph[v].append(edge_id + 1)
        self._to.append(u)
        self._cap.append(0.0)
        return edge_id

    def flow_on(self, edge_id: int) -> float:
        """Flow pushed along an edge (reverse edge residual capacity)."""
        return self._cap[edge_id ^ 1]

    def max_flow(self, source: Node, sink: Node) -> float:
        if source not in self._index or sink not in self._index:
            return 0.0
        s, t = self._index[source], self._index[sink]
        total = 0.0
        phases = 0
        augmenting = 0
        while True:
            level = self._bfs(s, t)
            if level is None:
                break
            phases += 1
            iters = [0] * len(self._graph)
            while True:
                pushed = self._dfs(s, t, _INF, level, iters)
                if not pushed:
                    break
                augmenting += 1
                total += pushed
        if _OBS.enabled:
            metrics = _OBS.metrics
            metrics.inc("matching.max_flow_calls")
            metrics.inc("matching.augmenting_paths", augmenting)
            metrics.observe("matching.bfs_phases", phases)
        return total

    def _bfs(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * len(self._graph)
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge_id in self._graph[u]:
                v = self._to[edge_id]
                if self._cap[edge_id] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] >= 0 else None

    def _dfs(self, u: int, t: int, limit: float, level: List[int], iters: List[int]) -> float:
        if u == t:
            return limit
        while iters[u] < len(self._graph[u]):
            edge_id = self._graph[u][iters[u]]
            v = self._to[edge_id]
            if self._cap[edge_id] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(v, t, min(limit, self._cap[edge_id]), level, iters)
                if pushed:
                    self._cap[edge_id] -= pushed
                    self._cap[edge_id ^ 1] += pushed
                    return pushed
            iters[u] += 1
        return 0.0


def max_bipartite_matching(
    left: Sequence[Node], adjacency: Mapping[Node, Iterable[Node]]
) -> Dict[Node, Node]:
    """Maximum matching of ``left`` items into their allowed partners.

    ``adjacency[item]`` lists the right-side nodes the item may match.
    Returns a dict item -> partner for the matched items.  Kuhn's
    augmenting-path algorithm; instance sizes in this library are the
    branching factors of trees, so the O(V·E) bound is comfortable.
    """
    cache = _PERF.caches["matching"] if _PERF.enabled else None
    if cache is not None:
        key = ("kuhn", _shape_key(left, adjacency))
        cached = cache.get(key)
        if cached is not _MISS:
            return dict(cached)
    match_right: Dict[Node, Node] = {}
    match_left: Dict[Node, Node] = {}

    def try_augment(item: Node, visited: Set[Node]) -> bool:
        for partner in adjacency.get(item, ()):
            if partner in visited:
                continue
            visited.add(partner)
            if partner not in match_right or try_augment(match_right[partner], visited):
                match_right[partner] = item
                match_left[item] = partner
                return True
        return False

    for item in left:
        try_augment(item, set())
    if _OBS.enabled:
        metrics = _OBS.metrics
        metrics.inc("matching.bipartite_calls")
        metrics.observe("matching.matching_size", len(match_left))
    if cache is not None:
        cache.put(key, dict(match_left))  # copies: callers may mutate theirs
    return match_left


def has_perfect_matching(
    left: Sequence[Node], adjacency: Mapping[Node, Iterable[Node]]
) -> bool:
    """True when every left item can be matched to a distinct partner."""
    return len(max_bipartite_matching(left, adjacency)) == len(left)


def feasible_assignment(
    items: Sequence[Node],
    slots: Mapping[Node, Tuple[int, Optional[int]]],
    allowed: Mapping[Node, Iterable[Node]],
) -> Optional[Dict[Node, Node]]:
    """Assign every item to an allowed slot within slot count bounds.

    ``slots[s] = (min, max)`` with ``max=None`` meaning unbounded.
    Returns an assignment dict item -> slot, or None when infeasible.

    This decides ``children ⊨ multiplicity atom``: items are child nodes,
    slots are the atom's entries, ``allowed`` records which entries each
    child could be typed by.

    The problem is a feasible circulation with lower bounds:
    ``s -> item`` has (low=1, cap=1), ``item -> slot`` (0, 1),
    ``slot -> t`` (min, max), ``t -> s`` (0, inf).  We apply the standard
    excess transformation (subtract lower bounds, route the deficit via a
    super source/sink) and run one max-flow.
    """
    if _OBS.enabled:
        _OBS.metrics.inc("matching.assignment_calls")
    cache = _PERF.caches["matching"] if _PERF.enabled else None
    if cache is not None:
        key = (
            "flow",
            _shape_key(items, allowed),
            tuple(sorted(slots.items(), key=lambda kv: repr(kv[0]))),
        )
        cached = cache.get(key)
        if cached is not _MISS:
            return dict(cached) if cached is not None else None
        result = _feasible_assignment_uncached(items, slots, allowed)
        cache.put(key, dict(result) if result is not None else None)
        return result
    return _feasible_assignment_uncached(items, slots, allowed)


def _feasible_assignment_uncached(
    items: Sequence[Node],
    slots: Mapping[Node, Tuple[int, Optional[int]]],
    allowed: Mapping[Node, Iterable[Node]],
) -> Optional[Dict[Node, Node]]:
    # Quick infeasibility: total min exceeds item count, or max below it.
    total_min = sum(low for low, _ in slots.values())
    if total_min > len(items):
        return None
    maxima = [high for _, high in slots.values()]
    if all(high is not None for high in maxima) and sum(maxima) < len(items):  # type: ignore[arg-type]
        return None

    dinic = Dinic()
    source, sink = ("#source",), ("#sink",)
    super_source, super_sink = ("#ss",), ("#tt",)
    big = len(items) + total_min + 5

    excess: Dict[Node, int] = {}

    def add_bounded(u: Node, v: Node, low: int, cap: Optional[int]) -> Optional[int]:
        """Add edge with lower bound; returns transformed edge id (or None
        when the transformed capacity is zero)."""
        residual = (cap if cap is not None else big) - low
        excess[v] = excess.get(v, 0) + low
        excess[u] = excess.get(u, 0) - low
        if residual > 0:
            return dinic.add_edge(u, v, residual)
        return None

    item_edges: Dict[Node, List[Tuple[int, Node]]] = {}
    for item in items:
        add_bounded(source, ("item", item), 1, 1)
        edges = []
        for slot in allowed.get(item, ()):
            if slot in slots:
                edge_id = dinic.add_edge(("item", item), ("slot", slot), 1)
                edges.append((edge_id, slot))
        if not edges:
            return None
        item_edges[item] = edges

    for slot, (low, high) in slots.items():
        if high is not None and high < low:
            return None
        add_bounded(("slot", slot), sink, low, high)
    dinic.add_edge(sink, source, big)

    required = 0
    for node, amount in excess.items():
        if amount > 0:
            dinic.add_edge(super_source, node, amount)
            required += amount
        elif amount < 0:
            dinic.add_edge(node, super_sink, -amount)
    if dinic.max_flow(super_source, super_sink) < required:
        return None

    assignment: Dict[Node, Node] = {}
    for item, edges in item_edges.items():
        for edge_id, slot in edges:
            if dinic.flow_on(edge_id) > 0:
                assignment[item] = slot
                break
        if item not in assignment:
            return None
    return assignment


def atom_feasible(
    items: Sequence[Node],
    entries: Iterable[Tuple[Node, int, Optional[int]]],
    allowed: Mapping[Node, Iterable[Node]],
) -> bool:
    """Convenience wrapper: is there a feasible assignment at all?"""
    slots = {name: (low, high) for name, low, high in entries}
    return feasible_assignment(items, slots, allowed) is not None
