"""Text syntax for conditions and ps-queries.

Tree types already have a text DSL (:meth:`TreeType.parse`); this module
adds the counterparts for the other two user-facing syntaxes so whole
examples can be written as text, mirroring the paper's figures.

Conditions::

    < 200
    = "elec"
    != 0 & != 1
    (>= 10 & < 20) | = "n/a"
    true

ps-queries (indentation-based, two spaces per level; ``~`` marks bar
labels, conditions in brackets)::

    catalog
      product
        name
        price [< 200]
        cat [= "elec"]
          subcat
        ~picture
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import List, Optional, Tuple

from .conditions import Cond
from .query import PSQuery, QueryNode

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<op><=|>=|!=|=|<|>)
      | (?P<and>&)
      | (?P<or>\|)
      | (?P<not>!(?![=]))
      | (?P<lpar>\()
      | (?P<rpar>\))
      | (?P<true>true)
      | (?P<false>false)
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?(?:/\d+)?)
    )""",
    re.VERBOSE,
)


class CondSyntaxError(ValueError):
    """Malformed condition text."""


def parse_cond(text: str) -> Cond:
    """Parse a condition expression (grammar in the module docstring).

    Precedence: ``!`` binds tightest, then ``&``, then ``|``.
    """
    tokens = _tokenize(text)
    parser = _CondParser(tokens, text)
    result = parser.parse_or()
    if parser.peek() is not None:
        raise CondSyntaxError(f"trailing input in condition: {text!r}")
    return result


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise CondSyntaxError(
                f"cannot tokenize condition at {text[position:]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _CondParser:
    def __init__(self, tokens: List[Tuple[str, str]], source: str):
        self._tokens = tokens
        self._index = 0
        self._source = source

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise CondSyntaxError(f"unexpected end of condition: {self._source!r}")
        self._index += 1
        return token

    def parse_or(self) -> Cond:
        left = self.parse_and()
        while self.peek() is not None and self.peek()[0] == "or":
            self.take()
            left = left | self.parse_and()
        return left

    def parse_and(self) -> Cond:
        left = self.parse_unary()
        while self.peek() is not None and self.peek()[0] == "and":
            self.take()
            left = left & self.parse_unary()
        return left

    def parse_unary(self) -> Cond:
        token = self.peek()
        if token is None:
            raise CondSyntaxError(f"unexpected end of condition: {self._source!r}")
        kind, value = token
        if kind == "not":
            self.take()
            return ~self.parse_unary()
        if kind == "lpar":
            self.take()
            inner = self.parse_or()
            closing = self.take()
            if closing[0] != "rpar":
                raise CondSyntaxError(f"missing ')' in {self._source!r}")
            return inner
        if kind == "true":
            self.take()
            return Cond.true()
        if kind == "false":
            self.take()
            return Cond.false()
        if kind == "op":
            self.take()
            return Cond.atom(value, self._parse_value())
        raise CondSyntaxError(
            f"unexpected {value!r} in condition {self._source!r}"
        )

    def _parse_value(self):
        kind, value = self.take()
        if kind == "string":
            return _unquote(value)
        if kind == "number":
            return Fraction(value)
        raise CondSyntaxError(
            f"expected a value after comparison in {self._source!r}"
        )


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


# -- query parsing -----------------------------------------------------------------

_LINE = re.compile(
    r"^(?P<indent>\s*)(?P<bar>~)?(?P<label>[\w.-]+)\s*(?:\[(?P<cond>.*)\])?\s*$"
)


class QuerySyntaxError(ValueError):
    """Malformed ps-query text."""


def parse_query(text: str) -> PSQuery:
    """Parse the indentation-based ps-query syntax.

    Common leading indentation is stripped (triple-quoted literals work
    as-is); the first indented line fixes the per-level width.
    """
    import textwrap

    text = textwrap.dedent(
        "\n".join(line for line in text.splitlines() if line.strip())
    )
    entries: List[Tuple[int, bool, str, Cond]] = []
    indent_unit: Optional[int] = None
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        match = _LINE.match(stripped)
        if match is None:
            raise QuerySyntaxError(f"cannot parse query line: {raw_line!r}")
        indent_text = match.group("indent")
        if "\t" in indent_text:
            raise QuerySyntaxError("use spaces, not tabs, for query indentation")
        width = len(indent_text)
        if width and indent_unit is None:
            indent_unit = width
        depth = 0 if not width else width // (indent_unit or 1)
        if indent_unit and width % indent_unit:
            raise QuerySyntaxError(
                f"indentation of {raw_line!r} is not a multiple of {indent_unit}"
            )
        cond_text = match.group("cond")
        cond = parse_cond(cond_text) if cond_text is not None else Cond.true()
        entries.append((depth, match.group("bar") is not None, match.group("label"), cond))

    if not entries:
        raise QuerySyntaxError("empty query")
    if entries[0][0] != 0:
        raise QuerySyntaxError("the root must not be indented")
    if sum(1 for depth, *_ in entries if depth == 0) > 1:
        raise QuerySyntaxError("a ps-query has a single root")

    root, remaining = _build_node(entries, 0)
    if remaining:
        raise QuerySyntaxError("dangling lines after the query root")
    return PSQuery(root)


def _build_node(
    entries: List[Tuple[int, bool, str, Cond]], depth: int
) -> Tuple[QueryNode, List[Tuple[int, bool, str, Cond]]]:
    head, rest = entries[0], entries[1:]
    head_depth, bar, label, cond = head
    if head_depth != depth:
        raise QuerySyntaxError(
            f"expected indentation depth {depth}, got {head_depth} at {label!r}"
        )
    children: List[QueryNode] = []
    while rest and rest[0][0] > depth:
        if rest[0][0] != depth + 1:
            raise QuerySyntaxError(
                f"indentation jumps by more than one level at {rest[0][2]!r}"
            )
        child, rest = _build_node(rest, depth + 1)
        children.append(child)
    return QueryNode(label, cond, bar, tuple(children)), rest


def parse_query_spec(spec: str, named=None) -> PSQuery:
    """A slash path like ``catalog/product/price[<300]`` as a ps-query.

    Each path segment may carry a bracketed condition (``parse_cond``
    syntax); a ``~`` prefix on the last segment extracts the whole
    subtree (the paper's bar adornment).  ``named`` optionally maps
    shorthand names (``"q1"``) to zero-arg query factories — the CLI and
    the ops server pass the catalog workload's q1..q4 here.
    """
    if named and spec in named:
        return named[spec]()
    segment_re = re.compile(r"^(~?)([^\[\]/]+?)(?:\[(.+)\])?$")
    current: Optional[QueryNode] = None
    segments = spec.split("/")
    for position, segment in enumerate(reversed(segments)):
        match = segment_re.match(segment.strip())
        if match is None:
            raise QuerySyntaxError(f"cannot parse query segment {segment!r}")
        bar, label, cond_text = match.groups()
        if bar and position != 0:
            raise QuerySyntaxError("only the last path segment may be bar-labeled (~)")
        cond = parse_cond(cond_text) if cond_text else Cond.true()
        children = () if current is None else (current,)
        if bar and children:
            raise QuerySyntaxError("bar-labeled segments must be leaves")
        current = QueryNode(label, cond, bool(bar), children)
    if current is None:
        raise QuerySyntaxError("empty query spec")
    return PSQuery(current)
