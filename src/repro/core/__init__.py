"""Core model: values, conditions, data trees, tree types, ps-queries."""

from .conditions import Cond, ValueSet, interval_partition
from .intervals import Interval, IntervalSet
from .matching import feasible_assignment, has_perfect_matching, max_bipartite_matching
from .multiplicity import Atom, Conjunction, Disjunction, Mult, parse_mult
from .parsing import CondSyntaxError, QuerySyntaxError, parse_cond, parse_query
from .query import PSQuery, QueryNode, linear_query, pattern, subtree
from .stringsets import StringSet
from .tree import DataTree, IdFactory, NodeId, NodeSpec, node
from .treetype import TreeType
from .values import Value, as_value, is_numeric, is_string, value_repr
from .xml_io import tree_from_xml, tree_to_xml

__all__ = [
    "Atom",
    "Cond",
    "CondSyntaxError",
    "Conjunction",
    "DataTree",
    "Disjunction",
    "IdFactory",
    "Interval",
    "IntervalSet",
    "Mult",
    "NodeId",
    "NodeSpec",
    "PSQuery",
    "QuerySyntaxError",
    "QueryNode",
    "StringSet",
    "TreeType",
    "Value",
    "ValueSet",
    "as_value",
    "feasible_assignment",
    "has_perfect_matching",
    "interval_partition",
    "is_numeric",
    "is_string",
    "linear_query",
    "max_bipartite_matching",
    "node",
    "parse_cond",
    "parse_mult",
    "parse_query",
    "pattern",
    "subtree",
    "tree_from_xml",
    "tree_to_xml",
    "value_repr",
]
