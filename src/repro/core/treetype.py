"""Tree types — the paper's simplified DTDs (Definition 2.2).

A tree type ``(Σ, R, µ)`` gives a set of root labels and, per label, one
multiplicity atom constraining the children of nodes with that label.
Satisfaction is checked per the definition: the root label is in R, and
every node's children conform to its label's atom.

A small text DSL mirrors the paper's notation::

    root: catalog
    catalog -> product+
    product -> name price cat picture*
    cat     -> subcat

Element names with no rule are leaves (``ε``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .multiplicity import Atom, Mult, parse_mult
from .tree import DataTree, NodeId


class TreeType:
    """A simplified DTD over an alphabet Σ."""

    __slots__ = ("_alphabet", "_roots", "_mu")

    def __init__(
        self,
        alphabet: Iterable[str],
        roots: Iterable[str],
        mu: Mapping[str, Atom],
    ):
        self._alphabet: FrozenSet[str] = frozenset(alphabet)
        self._roots: FrozenSet[str] = frozenset(roots)
        if not self._roots <= self._alphabet:
            raise ValueError("root labels must belong to the alphabet")
        self._mu: Dict[str, Atom] = {}
        for label in self._alphabet:
            atom = mu.get(label, Atom.leaf())
            for child in atom.symbols:
                if child not in self._alphabet:
                    raise ValueError(
                        f"rule for {label!r} mentions unknown label {child!r}"
                    )
            self._mu[label] = atom

    # -- accessors -----------------------------------------------------------

    @property
    def alphabet(self) -> FrozenSet[str]:
        return self._alphabet

    @property
    def roots(self) -> FrozenSet[str]:
        return self._roots

    def atom(self, label: str) -> Atom:
        """The multiplicity atom governing children of ``label``."""
        return self._mu[label]

    # -- satisfaction (Definition 2.2) ----------------------------------------

    def satisfied_by(self, tree: DataTree) -> bool:
        """Does the data tree satisfy this type?

        The empty tree does not satisfy any tree type (a type always
        requires a root).
        """
        return self.violation(tree) is None

    def violation(self, tree: DataTree) -> Optional[str]:
        """None when satisfied, else a human-readable reason."""
        if tree.is_empty():
            return "the empty tree has no root"
        root_label = tree.label(tree.root)
        if root_label not in self._roots:
            return f"root label {root_label!r} not among roots {sorted(self._roots)}"
        for node_id in tree.node_ids():
            label = tree.label(node_id)
            if label not in self._alphabet:
                return f"label {label!r} of node {node_id!r} not in the alphabet"
            atom = self._mu[label]
            counts: Dict[str, int] = {}
            for child in tree.children(node_id):
                child_label = tree.label(child)
                if atom.mult(child_label) is None:
                    return (
                        f"node {node_id!r} ({label}) has child labeled "
                        f"{child_label!r}, not allowed by {atom!r}"
                    )
                counts[child_label] = counts.get(child_label, 0) + 1
            for symbol, mult in atom.items():
                if not mult.allows(counts.get(symbol, 0)):
                    return (
                        f"node {node_id!r} ({label}) has {counts.get(symbol, 0)} "
                        f"children labeled {symbol!r}, violating {symbol}{mult.value}"
                    )
        return None

    # -- parsing ---------------------------------------------------------------------

    @staticmethod
    def parse(text: str, extra_labels: Iterable[str] = ()) -> "TreeType":
        """Parse the text DSL shown in the module docstring.

        ``extra_labels`` adds alphabet symbols that appear in no rule
        (useful when queries mention labels the type leaves out).
        """
        roots: List[str] = []
        mu: Dict[str, Atom] = {}
        alphabet = set(extra_labels)
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            if line.lower().startswith("root:"):
                for root in line[5:].replace(",", " ").split():
                    roots.append(root)
                continue
            if "->" not in line:
                raise ValueError(f"cannot parse tree type line: {raw_line!r}")
            head, _, body = line.partition("->")
            label = head.strip()
            if not label:
                raise ValueError(f"missing label in: {raw_line!r}")
            alphabet.add(label)
            entries: List[Tuple[str, Mult]] = []
            body = body.strip()
            if body and body != "ε":
                for token in body.split():
                    symbol, mult = _split_token(token)
                    entries.append((symbol, mult))
                    alphabet.add(symbol)
            if label in mu:
                raise ValueError(f"duplicate rule for {label!r}")
            mu[label] = Atom(entries)
        alphabet.update(roots)
        if not roots:
            raise ValueError("tree type needs a 'root:' line")
        return TreeType(alphabet, roots, mu)

    # -- rendering ---------------------------------------------------------------------

    def to_text(self) -> str:
        """Inverse of :meth:`parse` (stable ordering)."""
        lines = ["root: " + " ".join(sorted(self._roots))]
        for label in sorted(self._alphabet):
            atom = self._mu[label]
            if atom.is_leaf():
                continue
            lines.append(f"{label} -> {atom!r}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeType):
            return NotImplemented
        return (
            self._alphabet == other._alphabet
            and self._roots == other._roots
            and self._mu == other._mu
        )

    def __hash__(self) -> int:
        return hash((self._alphabet, self._roots, tuple(sorted(self._mu.items(), key=lambda kv: kv[0]))))

    def __repr__(self) -> str:
        return f"TreeType(roots={sorted(self._roots)}, {len(self._alphabet)} labels)"


def _split_token(token: str) -> Tuple[str, Mult]:
    """``product+`` -> (``product``, PLUS); bare names mean multiplicity 1.

    Only ``? + * ⋆`` act as multiplicity markers — a trailing ``1`` is
    part of the element name (``lit1`` is a name, not ``lit`` once).
    """
    if token[-1] in "?+*" or token.endswith("⋆"):
        symbol = token[:-1]
        mult = parse_mult(token[len(symbol):])
    else:
        symbol, mult = token, Mult.ONE
    if not symbol:
        raise ValueError(f"bad token {token!r}")
    return symbol, mult
